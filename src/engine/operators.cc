#include "engine/operators.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/str_util.h"
#include "engine/hash_table.h"
#include "engine/kernels.h"
#include "obs/trace.h"

namespace prost::engine {
namespace {

/// Column indices of the shared join variables in each relation, aligned
/// pairwise.
struct SharedColumns {
  std::vector<int> left;
  std::vector<int> right;
};

SharedColumns FindSharedColumns(const Relation& left, const Relation& right) {
  SharedColumns shared;
  for (size_t i = 0; i < left.column_names().size(); ++i) {
    int j = right.ColumnIndex(left.column_names()[i]);
    if (j >= 0) {
      shared.left.push_back(static_cast<int>(i));
      shared.right.push_back(j);
    }
  }
  return shared;
}

/// Output column layout: all of build side, then probe side minus shared.
struct OutputLayout {
  std::vector<std::string> names;
  std::vector<int> probe_extra_cols;  // probe columns not shared
};

OutputLayout MakeOutputLayout(const Relation& build, const Relation& probe,
                              const SharedColumns& shared_build_probe) {
  OutputLayout layout;
  layout.names = build.column_names();
  // Membership test directly on the shared-column vector: joins share at
  // most a handful of columns, so a linear scan beats a heap-allocated
  // set per join call.
  const std::vector<int>& shared_probe = shared_build_probe.right;
  for (size_t j = 0; j < probe.column_names().size(); ++j) {
    if (std::find(shared_probe.begin(), shared_probe.end(),
                  static_cast<int>(j)) == shared_probe.end()) {
      layout.probe_extra_cols.push_back(static_cast<int>(j));
      layout.names.push_back(probe.column_names()[j]);
    }
  }
  return layout;
}

/// Reusable per-task scratch for the vectorized probe loop: batch key
/// hashes plus the candidate (build row, probe row) pair vectors. Reused
/// across batches so steady-state probing allocates nothing.
struct JoinScratch {
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> build_rows;
  std::vector<uint32_t> probe_rows;
};

/// Builds `table` over every row of `build` (hashes computed column-wise
/// into `hash_scratch`). Rows enter in ascending order — the determinism
/// contract every probe path relies on.
void BuildChunkTable(const RelationChunk& build, const std::vector<int>& keys,
                     std::vector<uint64_t>& hash_scratch,
                     FlatHashTable& table) {
  kernels::HashColumns(build, keys, 0, build.num_rows(), hash_scratch);
  table.Build(hash_scratch.data(), build.num_rows());
}

/// The build side hash-partitioned into per-thread partitions, each with
/// its own flat table (built concurrently). A probe row's hash selects
/// exactly one partition, so lookups stay single-table.
struct PartitionedIndex {
  uint32_t fanout = 1;
  std::vector<uint64_t> row_hashes;  // Key hash per build row.
  std::vector<FlatHashTable> parts;

  FlatHashTable::Range Lookup(uint64_t hash) const {
    return parts[hash % fanout].Lookup(hash);
  }
};

PartitionedIndex BuildPartitionedIndex(const RelationChunk& build,
                                       const std::vector<int>& keys,
                                       const ExecContext& exec) {
  PartitionedIndex pidx;
  const size_t rows = build.num_rows();
  pidx.fanout = exec.num_threads();
  pidx.row_hashes.resize(rows);
  const size_t num_morsels = exec.NumMorsels(rows);
  // Phase 1, parallel over build morsels: hash every row column-wise and
  // bucket row indices by partition, each morsel into its own buffers.
  std::vector<std::vector<uint32_t>> buckets(num_morsels * pidx.fanout);
  exec.pool()->ParallelFor(num_morsels, [&](size_t m) {
    size_t begin = m * exec.morsel_rows();
    size_t end = std::min(rows, begin + exec.morsel_rows());
    kernels::HashColumns(build, keys, begin, end,
                         pidx.row_hashes.data() + begin);
    for (size_t r = begin; r < end; ++r) {
      buckets[m * pidx.fanout + pidx.row_hashes[r] % pidx.fanout].push_back(
          static_cast<uint32_t>(r));
    }
  });
  // Phase 2, parallel over partitions: each partition concatenates its
  // buckets in morsel order — i.e. ascending build-row order — and builds
  // its flat table from them, so hash runs carry rows ascending, matching
  // BuildChunkTable exactly.
  pidx.parts.resize(pidx.fanout);
  exec.pool()->ParallelFor(pidx.fanout, [&](size_t p) {
    size_t total = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      total += buckets[m * pidx.fanout + p].size();
    }
    std::vector<uint32_t> part_rows;
    part_rows.reserve(total);
    for (size_t m = 0; m < num_morsels; ++m) {
      const std::vector<uint32_t>& bucket = buckets[m * pidx.fanout + p];
      part_rows.insert(part_rows.end(), bucket.begin(), bucket.end());
    }
    pidx.parts[p].BuildFromRows(part_rows.data(), part_rows.size(),
                                pidx.row_hashes.data());
  });
  return pidx;
}

/// Probes rows [begin, end) of `probe` against `lookup` (hash → ascending
/// build rows), appending matches to `out`. Vectorized: per batch, hash
/// the key columns, collect hash-match candidates, batch-verify keys,
/// then materialize via per-column gathers. Candidates are collected
/// probe-row-major with each run ascending, and verification is stable,
/// so output order is (probe row, build row) — exactly the row-at-a-time
/// order. Returns emitted rows.
template <typename Lookup>
uint64_t ProbeRange(const RelationChunk& build,
                    const std::vector<int>& build_keys,
                    const RelationChunk& probe,
                    const std::vector<int>& probe_keys,
                    const std::vector<int>& probe_extra_cols, size_t begin,
                    size_t end, const Lookup& lookup, RelationChunk& out,
                    JoinScratch& scratch) {
  uint64_t emitted = 0;
  const size_t build_width = build.columns.size();
  for (size_t batch = begin; batch < end; batch += kernels::kBatchRows) {
    const size_t batch_end = std::min(end, batch + kernels::kBatchRows);
    kernels::HashColumns(probe, probe_keys, batch, batch_end,
                         scratch.hashes);
    scratch.build_rows.clear();
    scratch.probe_rows.clear();
    for (size_t i = 0; i < batch_end - batch; ++i) {
      FlatHashTable::Range range = lookup(scratch.hashes[i]);
      for (const uint32_t* br = range.begin; br != range.end; ++br) {
        scratch.build_rows.push_back(*br);
        scratch.probe_rows.push_back(static_cast<uint32_t>(batch + i));
      }
    }
    emitted += kernels::CompareKeysAt(build, build_keys, probe, probe_keys,
                                      scratch.build_rows,
                                      scratch.probe_rows);
    for (size_t c = 0; c < build_width; ++c) {
      kernels::Gather(build.columns[c], scratch.build_rows, out.columns[c]);
    }
    for (size_t k = 0; k < probe_extra_cols.size(); ++k) {
      kernels::Gather(
          probe.columns[static_cast<size_t>(probe_extra_cols[k])],
          scratch.probe_rows, out.columns[build_width + k]);
    }
  }
  return emitted;
}

/// One parallel task's slice of a chunked relation.
struct Morsel {
  uint32_t chunk = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// Splits every chunk into morsels, emitted in (chunk, begin) order — the
/// order parallel operators merge task outputs back in.
std::vector<Morsel> PlanMorsels(const Relation& relation,
                                const ExecContext& exec) {
  std::vector<Morsel> morsels;
  for (uint32_t w = 0; w < relation.num_chunks(); ++w) {
    size_t rows = relation.chunks()[w].num_rows();
    for (size_t begin = 0; begin < rows; begin += exec.morsel_rows()) {
      morsels.push_back(
          {w, begin, std::min(rows, begin + exec.morsel_rows())});
    }
  }
  return morsels;
}

void AppendColumns(RelationChunk& dst, const RelationChunk& src) {
  for (size_t c = 0; c < dst.columns.size(); ++c) {
    dst.columns[c].insert(dst.columns[c].end(), src.columns[c].begin(),
                          src.columns[c].end());
  }
}

/// Morsel-parallel probe of `probe_rel` against per-chunk build sides.
/// `build_of(chunk)` yields the build chunk to join chunk `chunk` with;
/// `lookup_of(chunk, hash)` its index lookup. Morsel outputs merge back
/// in morsel order, so each output chunk is ordered by (probe row, build
/// row) — identical to the serial path. Returns per-chunk emitted counts
/// for cost charging (done by the caller, outside the parallel region).
template <typename BuildOf, typename LookupOf>
std::vector<uint64_t> ParallelProbe(const Relation& probe_rel,
                                    const std::vector<int>& probe_keys,
                                    const std::vector<int>& probe_extra_cols,
                                    const std::vector<int>& build_keys,
                                    const BuildOf& build_of,
                                    const LookupOf& lookup_of,
                                    const ExecContext& exec,
                                    Relation& output) {
  std::vector<Morsel> morsels = PlanMorsels(probe_rel, exec);
  std::vector<RelationChunk> outs(morsels.size());
  const size_t width = output.num_columns();
  exec.pool()->ParallelFor(morsels.size(), [&](size_t m) {
    const Morsel& morsel = morsels[m];
    outs[m].columns.resize(width);
    const RelationChunk& build = build_of(morsel.chunk);
    auto lookup = [&](uint64_t h) { return lookup_of(morsel.chunk, h); };
    JoinScratch scratch;
    ProbeRange(build, build_keys, probe_rel.chunks()[morsel.chunk],
               probe_keys, probe_extra_cols, morsel.begin, morsel.end,
               lookup, outs[m], scratch);
  });
  std::vector<uint64_t> emitted(probe_rel.num_chunks(), 0);
  for (size_t m = 0; m < morsels.size(); ++m) {
    emitted[morsels[m].chunk] += outs[m].num_rows();
    AppendColumns(output.mutable_chunks()[morsels[m].chunk], outs[m]);
  }
  return emitted;
}

/// Reorders `input`'s columns into `target_names` order (names must be a
/// permutation of the input's). Keeps chunk placement; remaps the
/// partitioning column and preserves the planner estimate.
Relation ReorderColumns(Relation&& input,
                        const std::vector<std::string>& target_names) {
  if (input.column_names() == target_names) return std::move(input);
  std::vector<int> source_of(target_names.size());
  for (size_t c = 0; c < target_names.size(); ++c) {
    source_of[c] = input.ColumnIndex(target_names[c]);
  }
  Relation output(target_names, input.num_chunks());
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    for (size_t c = 0; c < target_names.size(); ++c) {
      output.mutable_chunks()[w].columns[c] = std::move(
          input.mutable_chunks()[w].columns[static_cast<size_t>(
              source_of[c])]);
    }
  }
  if (input.hash_partitioned_by() >= 0) {
    const std::string& part_name =
        input.column_names()[static_cast<size_t>(
            input.hash_partitioned_by())];
    output.set_hash_partitioned_by(output.ColumnIndex(part_name));
  }
  if (input.planner_bytes_set()) {
    cluster::ClusterConfig dummy;
    output.set_planner_bytes(input.PlannerBytes(dummy));
  }
  return output;
}

/// Gathers every row of `relation` into a single chunk (for broadcast).
RelationChunk GatherAll(const Relation& relation) {
  RelationChunk gathered;
  gathered.columns.resize(relation.num_columns());
  for (const RelationChunk& chunk : relation.chunks()) {
    for (size_t c = 0; c < chunk.columns.size(); ++c) {
      gathered.columns[c].insert(gathered.columns[c].end(),
                                 chunk.columns[c].begin(),
                                 chunk.columns[c].end());
    }
  }
  return gathered;
}

}  // namespace

JoinStrategy ResolveJoinStrategy(uint64_t left_planner_bytes,
                                 uint64_t right_planner_bytes,
                                 const JoinOptions& options,
                                 const cluster::ClusterConfig& config) {
  uint64_t threshold = options.broadcast_threshold_bytes != 0
                           ? options.broadcast_threshold_bytes
                           : config.broadcast_threshold_bytes;
  bool broadcast =
      options.allow_broadcast &&
      std::min(left_planner_bytes, right_planner_bytes) <= threshold;
  return broadcast ? JoinStrategy::kBroadcast : JoinStrategy::kShuffle;
}

Relation RepartitionByColumn(const Relation& input, int column_index,
                             uint32_t num_workers,
                             cluster::CostModel& cost,
                             const ExecContext* exec) {
  if (input.hash_partitioned_by() == column_index &&
      input.num_chunks() == num_workers) {
    return input;  // Already placed correctly; free — no span either.
  }
  obs::OperatorSpan span(
      ProfileOf(exec), cost, obs::SpanKind::kExchange,
      input.column_names()[static_cast<size_t>(column_index)]);
  span.SetRowsIn(input.TotalRows());
  span.SetRowsOut(input.TotalRows());
  cost.ChargeShuffle(input.EstimatedBytes(cost.config()));
  Relation output(input.column_names(), num_workers);
  if (IsParallel(exec)) {
    // Phase 1, parallel over morsels: bucket row indices by target.
    std::vector<Morsel> morsels = PlanMorsels(input, *exec);
    std::vector<std::vector<uint32_t>> buckets(morsels.size() * num_workers);
    exec->pool()->ParallelFor(morsels.size(), [&](size_t m) {
      const Morsel& morsel = morsels[m];
      const IdVector& keys =
          input.chunks()[morsel.chunk]
              .columns[static_cast<size_t>(column_index)];
      for (size_t r = morsel.begin; r < morsel.end; ++r) {
        uint32_t target =
            static_cast<uint32_t>(Mix64(keys[r]) % num_workers);
        buckets[m * num_workers + target].push_back(
            static_cast<uint32_t>(r));
      }
    });
    // Phase 2, parallel over targets: assemble each target chunk in
    // morsel order — (source chunk, source row) order, as in the serial
    // loop below. Each bucket is a selection vector into its source
    // chunk, so assembly is a per-column bulk gather.
    exec->pool()->ParallelFor(num_workers, [&](size_t target) {
      RelationChunk& out = output.mutable_chunks()[target];
      for (size_t m = 0; m < morsels.size(); ++m) {
        const RelationChunk& chunk = input.chunks()[morsels[m].chunk];
        const std::vector<uint32_t>& sel =
            buckets[m * num_workers + target];
        for (size_t c = 0; c < chunk.columns.size(); ++c) {
          kernels::Gather(chunk.columns[c], sel, out.columns[c]);
        }
      }
    });
  } else {
    // Serial: per chunk, split rows into per-target selection vectors,
    // then gather each target's slice column by column. Targets receive
    // rows in (source chunk, source row) order — the same order the old
    // per-row loop produced.
    std::vector<std::vector<uint32_t>> sel(num_workers);
    for (const RelationChunk& chunk : input.chunks()) {
      for (std::vector<uint32_t>& s : sel) s.clear();
      const IdVector& keys =
          chunk.columns[static_cast<size_t>(column_index)];
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        sel[Mix64(keys[r]) % num_workers].push_back(
            static_cast<uint32_t>(r));
      }
      for (uint32_t target = 0; target < num_workers; ++target) {
        RelationChunk& out = output.mutable_chunks()[target];
        for (size_t c = 0; c < chunk.columns.size(); ++c) {
          kernels::Gather(chunk.columns[c], sel[target], out.columns[c]);
        }
      }
    }
  }
  output.set_hash_partitioned_by(column_index);
  return output;
}

Result<JoinResult> HashJoin(const Relation& left, const Relation& right,
                            const JoinOptions& options,
                            cluster::CostModel& cost,
                            const ExecContext* exec) {
  SharedColumns shared = FindSharedColumns(left, right);
  if (shared.left.empty()) {
    return Status::InvalidArgument(
        "join requires at least one shared column; got [" +
        StrJoin(left.column_names(), ",") + "] vs [" +
        StrJoin(right.column_names(), ",") + "]");
  }
  const cluster::ClusterConfig& config = cost.config();
  // Broadcast planning uses the *planner* estimates: base-relation sizes
  // from storage, join outputs "unknown" (never broadcast, Spark 2.1
  // semantics) unless the optimizer stamped an exact-statistics size.
  uint64_t left_planner = left.PlannerBytes(config);
  uint64_t right_planner = right.PlannerBytes(config);
  uint32_t num_workers = config.num_workers;
  JoinStrategy derived =
      ResolveJoinStrategy(left_planner, right_planner, options, config);
  JoinStrategy strategy = options.planned_strategy.value_or(derived);
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
  // The optimizer resolves strategies from the same planner estimates, so
  // a mismatch means the plan's planner_bytes drifted from execution.
  if (options.planned_strategy.has_value() &&
      *options.planned_strategy != derived) {
    return Status::Internal(
        "planned join strategy disagrees with the run-time derivation");
  }
#endif

  if (strategy == JoinStrategy::kBroadcast) {
    // Broadcast the (planner-)smaller side; the bigger side never moves.
    const bool left_is_small = left_planner <= right_planner;
    const Relation& small = left_is_small ? left : right;
    const Relation& big = left_is_small ? right : left;

    SharedColumns small_big = FindSharedColumns(small, big);
    OutputLayout layout = MakeOutputLayout(small, big, small_big);

    // Pipelined into the caller's open stage: no stage boundary.
    cost.ChargeBroadcast(small.EstimatedBytes(config));
    RelationChunk small_all = GatherAll(small);

    Relation output(layout.names, big.num_chunks());
    if (IsParallel(exec)) {
      // Partitioned build of the broadcast side (once, shared by every
      // probe chunk), then morsel-parallel probe across all chunks.
      PartitionedIndex pidx =
          BuildPartitionedIndex(small_all, small_big.left, *exec);
      std::vector<uint64_t> emitted = ParallelProbe(
          big, small_big.right, layout.probe_extra_cols, small_big.left,
          [&](uint32_t) -> const RelationChunk& { return small_all; },
          [&](uint32_t, uint64_t h) { return pidx.Lookup(h); }, *exec,
          output);
      for (uint32_t w = 0; w < big.num_chunks(); ++w) {
        cost.ChargeCpuRows(w, small_all.num_rows() +
                                  big.chunks()[w].num_rows() + emitted[w]);
      }
    } else {
      // Build the broadcast side's table once; every probe chunk shares
      // it (each simulated worker still pays the build in ChargeCpuRows).
      FlatHashTable table;
      JoinScratch scratch;
      BuildChunkTable(small_all, small_big.left, scratch.hashes, table);
      auto lookup = [&](uint64_t h) { return table.Lookup(h); };
      for (uint32_t w = 0; w < big.num_chunks(); ++w) {
        const RelationChunk& big_chunk = big.chunks()[w];
        uint64_t emitted = ProbeRange(
            small_all, small_big.left, big_chunk, small_big.right,
            layout.probe_extra_cols, 0, big_chunk.num_rows(), lookup,
            output.mutable_chunks()[w], scratch);
        cost.ChargeCpuRows(w, small_all.num_rows() + big_chunk.num_rows() +
                                  emitted);
      }
    }

    // The big side's placement is preserved, so its partitioning column
    // (if any) still holds in the output.
    if (big.hash_partitioned_by() >= 0) {
      const std::string& part_name =
          big.column_names()[static_cast<size_t>(big.hash_partitioned_by())];
      int out_index = output.ColumnIndex(part_name);
      output.set_hash_partitioned_by(out_index);
    }
    output.set_planner_bytes(Relation::kUnknownPlannerBytes);
    // Canonical output layout is left-major regardless of which side was
    // broadcast, so plans are insensitive to the physical strategy.
    SharedColumns left_right = FindSharedColumns(left, right);
    OutputLayout canonical = MakeOutputLayout(left, right, left_right);
    return JoinResult{ReorderColumns(std::move(output), canonical.names),
                      JoinStrategy::kBroadcast};
  }

  // Shuffle join: a stage boundary. Close the caller's pipeline stage,
  // open the post-shuffle stage, and leave it open for downstream work.
  cost.EndStage();
  cost.BeginStage("shuffle_join");
  Relation left_parts =
      options.reuse_partitioning
          ? RepartitionByColumn(left, shared.left[0], num_workers, cost,
                                exec)
          : [&] {
              Relation copy = left;
              copy.set_hash_partitioned_by(-1);
              return RepartitionByColumn(copy, shared.left[0], num_workers,
                                         cost, exec);
            }();
  Relation right_parts =
      options.reuse_partitioning
          ? RepartitionByColumn(right, shared.right[0], num_workers, cost,
                                exec)
          : [&] {
              Relation copy = right;
              copy.set_hash_partitioned_by(-1);
              return RepartitionByColumn(copy, shared.right[0], num_workers,
                                         cost, exec);
            }();

  OutputLayout layout = MakeOutputLayout(left_parts, right_parts, shared);
  Relation output(layout.names, num_workers);
  if (IsParallel(exec)) {
    // Worker partitions build concurrently (each is one co-located hash
    // table), then probe morsels run across all partitions at once.
    std::vector<FlatHashTable> tables(num_workers);
    exec->pool()->ParallelFor(num_workers, [&](size_t w) {
      std::vector<uint64_t> hashes;
      BuildChunkTable(left_parts.chunks()[w], shared.left, hashes,
                      tables[w]);
    });
    std::vector<uint64_t> emitted = ParallelProbe(
        right_parts, shared.right, layout.probe_extra_cols, shared.left,
        [&](uint32_t w) -> const RelationChunk& {
          return left_parts.chunks()[w];
        },
        [&](uint32_t w, uint64_t h) { return tables[w].Lookup(h); }, *exec,
        output);
    for (uint32_t w = 0; w < num_workers; ++w) {
      cost.ChargeCpuRows(w, left_parts.chunks()[w].num_rows() +
                                right_parts.chunks()[w].num_rows() +
                                emitted[w]);
    }
  } else {
    // One table + scratch reused across workers: rebuild per partition,
    // keep the allocations.
    FlatHashTable table;
    JoinScratch scratch;
    for (uint32_t w = 0; w < num_workers; ++w) {
      const RelationChunk& l = left_parts.chunks()[w];
      const RelationChunk& r = right_parts.chunks()[w];
      BuildChunkTable(l, shared.left, scratch.hashes, table);
      auto lookup = [&](uint64_t h) { return table.Lookup(h); };
      uint64_t emitted = ProbeRange(l, shared.left, r, shared.right,
                                    layout.probe_extra_cols, 0, r.num_rows(),
                                    lookup, output.mutable_chunks()[w],
                                    scratch);
      cost.ChargeCpuRows(w, l.num_rows() + r.num_rows() + emitted);
    }
  }
  output.set_hash_partitioned_by(shared.left[0]);
  output.set_planner_bytes(Relation::kUnknownPlannerBytes);
  return JoinResult{std::move(output), JoinStrategy::kShuffle};
}

Result<Relation> Filter(const Relation& input, const std::string& column_name,
                        TermId value, cluster::CostModel& cost,
                        const ExecContext* exec) {
  int column = input.ColumnIndex(column_name);
  if (column < 0) {
    return Status::InvalidArgument("filter on unknown column " + column_name);
  }
  obs::OperatorSpan span(ProfileOf(exec), cost, obs::SpanKind::kFilter,
                         column_name);
  span.SetRowsIn(input.TotalRows());
  Relation output(input.column_names(), input.num_chunks());
  output.set_hash_partitioned_by(input.hash_partitioned_by());
  // Spark 2.1 static planning: filters do not discount sizeInBytes.
  if (input.planner_bytes_set()) {
    output.set_planner_bytes(input.PlannerBytes(cost.config()));
  }
  if (IsParallel(exec)) {
    std::vector<Morsel> morsels = PlanMorsels(input, *exec);
    std::vector<RelationChunk> outs(morsels.size());
    exec->pool()->ParallelFor(morsels.size(), [&](size_t m) {
      const Morsel& morsel = morsels[m];
      const RelationChunk& chunk = input.chunks()[morsel.chunk];
      RelationChunk& out = outs[m];
      out.columns.resize(chunk.columns.size());
      std::vector<uint32_t> sel;
      kernels::Filter(chunk.columns[static_cast<size_t>(column)], value,
                      morsel.begin, morsel.end, sel);
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        kernels::Gather(chunk.columns[c], sel, out.columns[c]);
      }
    });
    for (size_t m = 0; m < morsels.size(); ++m) {
      AppendColumns(output.mutable_chunks()[morsels[m].chunk], outs[m]);
    }
    for (uint32_t w = 0; w < input.num_chunks(); ++w) {
      cost.ChargeCpuRows(w, input.chunks()[w].num_rows());
    }
    span.SetRowsOut(output.TotalRows());
    return output;
  }
  std::vector<uint32_t> sel;
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    const RelationChunk& chunk = input.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    sel.clear();
    kernels::Filter(chunk.columns[static_cast<size_t>(column)], value, 0,
                    chunk.num_rows(), sel);
    for (size_t c = 0; c < chunk.columns.size(); ++c) {
      kernels::Gather(chunk.columns[c], sel, out.columns[c]);
    }
    cost.ChargeCpuRows(w, chunk.num_rows());
  }
  span.SetRowsOut(output.TotalRows());
  return output;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& column_names,
                         cluster::CostModel& cost,
                         const ExecContext* exec) {
  std::vector<int> indices;
  indices.reserve(column_names.size());
  std::unordered_set<std::string> seen;
  for (const std::string& name : column_names) {
    int index = input.ColumnIndex(name);
    if (index < 0) {
      return Status::InvalidArgument("project on unknown column " + name);
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate projected column " + name);
    }
    indices.push_back(index);
  }
  // No span of its own: callers (the plan interpreter, the modifier tail)
  // wrap the call in the span that names their plan node.
  Relation output(column_names, input.num_chunks());
  // Projection is the degenerate batch kernel: a whole-column copy per
  // selected column (no per-row work at all).
  if (IsParallel(exec)) {
    // Whole-column copies: one task per chunk is the right granularity.
    exec->pool()->ParallelFor(input.num_chunks(), [&](size_t w) {
      const RelationChunk& chunk = input.chunks()[w];
      RelationChunk& out = output.mutable_chunks()[w];
      for (size_t c = 0; c < indices.size(); ++c) {
        out.columns[c] = chunk.columns[static_cast<size_t>(indices[c])];
      }
    });
    for (uint32_t w = 0; w < input.num_chunks(); ++w) {
      cost.ChargeCpuRows(w, input.chunks()[w].num_rows());
    }
  } else {
    for (uint32_t w = 0; w < input.num_chunks(); ++w) {
      const RelationChunk& chunk = input.chunks()[w];
      RelationChunk& out = output.mutable_chunks()[w];
      for (size_t c = 0; c < indices.size(); ++c) {
        out.columns[c] = chunk.columns[static_cast<size_t>(indices[c])];
      }
      cost.ChargeCpuRows(w, chunk.num_rows());
    }
  }
  // Projection keeps rows in place; partition column survives if selected.
  if (input.hash_partitioned_by() >= 0) {
    const std::string& part_name =
        input.column_names()[static_cast<size_t>(input.hash_partitioned_by())];
    output.set_hash_partitioned_by(output.ColumnIndex(part_name));
  }
  if (input.planner_bytes_set()) {
    output.set_planner_bytes(input.PlannerBytes(cost.config()));
  }
  return output;
}

Result<Relation> Distinct(const Relation& input, cluster::CostModel& cost,
                          const ExecContext* exec) {
  // No span of its own (callers wrap the call in their plan node's span).
  (void)exec;
  // Stage boundary, like a shuffle join: close the caller's pipeline
  // stage, run the distinct exchange in a new one, leave it open.
  cost.EndStage();
  cost.BeginStage("distinct");
  // Shuffle by full-row hash so duplicates co-locate, then dedupe locally.
  cost.ChargeShuffle(input.EstimatedBytes(cost.config()));
  uint32_t num_workers = cost.config().num_workers;
  Relation shuffled(input.column_names(), num_workers);
  for (const RelationChunk& chunk : input.chunks()) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      uint64_t h = 0x51ed270b9a3e11c7ULL;
      for (const IdVector& column : chunk.columns) {
        h = HashCombine(h, column[r]);
      }
      RelationChunk& out = shuffled.mutable_chunks()[h % num_workers];
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
  }
  Relation output(input.column_names(), num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    const RelationChunk& chunk = shuffled.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    std::unordered_set<std::string> seen;
    seen.reserve(chunk.num_rows());
    std::string key;
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      key.clear();
      for (const IdVector& column : chunk.columns) {
        key.append(reinterpret_cast<const char*>(&column[r]),
                   sizeof(TermId));
      }
      if (!seen.insert(key).second) continue;
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
    cost.ChargeCpuRows(w, chunk.num_rows());
  }
  output.set_planner_bytes(Relation::kUnknownPlannerBytes);
  return output;
}

Relation PruneColumns(Relation&& input,
                      const std::vector<std::string>& keep) {
  if (input.column_names() == keep) return std::move(input);
  std::vector<int> source_of(keep.size());
  for (size_t c = 0; c < keep.size(); ++c) {
    source_of[c] = input.ColumnIndex(keep[c]);
  }
  Relation output(keep, input.num_chunks());
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    for (size_t c = 0; c < keep.size(); ++c) {
      output.mutable_chunks()[w].columns[c] = std::move(
          input.mutable_chunks()[w]
              .columns[static_cast<size_t>(source_of[c])]);
    }
  }
  if (input.hash_partitioned_by() >= 0) {
    const std::string& part_name =
        input.column_names()[static_cast<size_t>(
            input.hash_partitioned_by())];
    output.set_hash_partitioned_by(output.ColumnIndex(part_name));
  }
  // Static planning: the planner priced the unpruned input, and that
  // number must keep flowing (it is what the resolved join strategies
  // were derived from).
  if (input.planner_bytes_set()) {
    cluster::ClusterConfig dummy;
    output.set_planner_bytes(input.PlannerBytes(dummy));
  }
  return output;
}

Relation Limit(const Relation& input, uint64_t limit) {
  Relation output(input.column_names(), input.num_chunks());
  uint64_t taken = 0;
  for (uint32_t w = 0; w < input.num_chunks() && taken < limit; ++w) {
    const RelationChunk& chunk = input.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(chunk.num_rows(), limit - taken));
    for (size_t c = 0; c < chunk.columns.size(); ++c) {
      out.columns[c].assign(chunk.columns[c].begin(),
                            chunk.columns[c].begin() + take);
    }
    taken += take;
  }
  return output;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  if (a.column_names() != b.column_names()) {
    return Status::InvalidArgument("union requires identical column names");
  }
  if (a.num_chunks() != b.num_chunks()) {
    return Status::InvalidArgument("union requires equal chunk counts");
  }
  Relation output(a.column_names(), a.num_chunks());
  for (uint32_t w = 0; w < a.num_chunks(); ++w) {
    RelationChunk& out = output.mutable_chunks()[w];
    for (size_t c = 0; c < out.columns.size(); ++c) {
      out.columns[c] = a.chunks()[w].columns[c];
      out.columns[c].insert(out.columns[c].end(),
                            b.chunks()[w].columns[c].begin(),
                            b.chunks()[w].columns[c].end());
    }
  }
  return output;
}

}  // namespace prost::engine
