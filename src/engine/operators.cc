#include "engine/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/str_util.h"

namespace prost::engine {
namespace {

/// Column indices of the shared join variables in each relation, aligned
/// pairwise.
struct SharedColumns {
  std::vector<int> left;
  std::vector<int> right;
};

SharedColumns FindSharedColumns(const Relation& left, const Relation& right) {
  SharedColumns shared;
  for (size_t i = 0; i < left.column_names().size(); ++i) {
    int j = right.ColumnIndex(left.column_names()[i]);
    if (j >= 0) {
      shared.left.push_back(static_cast<int>(i));
      shared.right.push_back(j);
    }
  }
  return shared;
}

uint64_t KeyHash(const RelationChunk& chunk, const std::vector<int>& key_cols,
                 size_t row) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (int c : key_cols) {
    h = HashCombine(h, chunk.columns[static_cast<size_t>(c)][row]);
  }
  return h;
}

bool KeysEqual(const RelationChunk& a, const std::vector<int>& a_cols,
               size_t a_row, const RelationChunk& b,
               const std::vector<int>& b_cols, size_t b_row) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    if (a.columns[static_cast<size_t>(a_cols[k])][a_row] !=
        b.columns[static_cast<size_t>(b_cols[k])][b_row]) {
      return false;
    }
  }
  return true;
}

/// Output column layout: all of build side, then probe side minus shared.
struct OutputLayout {
  std::vector<std::string> names;
  std::vector<int> probe_extra_cols;  // probe columns not shared
};

OutputLayout MakeOutputLayout(const Relation& build, const Relation& probe,
                              const SharedColumns& shared_build_probe) {
  OutputLayout layout;
  layout.names = build.column_names();
  std::unordered_set<int> shared_probe(shared_build_probe.right.begin(),
                                       shared_build_probe.right.end());
  for (size_t j = 0; j < probe.column_names().size(); ++j) {
    if (!shared_probe.count(static_cast<int>(j))) {
      layout.probe_extra_cols.push_back(static_cast<int>(j));
      layout.names.push_back(probe.column_names()[j]);
    }
  }
  return layout;
}

/// Joins one build chunk against one probe chunk into `out`.
/// Returns the number of emitted rows.
uint64_t JoinChunks(const RelationChunk& build,
                    const std::vector<int>& build_keys,
                    const RelationChunk& probe,
                    const std::vector<int>& probe_keys,
                    const std::vector<int>& probe_extra_cols,
                    RelationChunk& out) {
  std::unordered_multimap<uint64_t, size_t> table;
  table.reserve(build.num_rows());
  for (size_t r = 0; r < build.num_rows(); ++r) {
    table.emplace(KeyHash(build, build_keys, r), r);
  }
  uint64_t emitted = 0;
  size_t build_width = build.columns.size();
  for (size_t pr = 0; pr < probe.num_rows(); ++pr) {
    uint64_t h = KeyHash(probe, probe_keys, pr);
    auto [begin, end] = table.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      size_t br = it->second;
      if (!KeysEqual(build, build_keys, br, probe, probe_keys, pr)) continue;
      for (size_t c = 0; c < build_width; ++c) {
        out.columns[c].push_back(build.columns[c][br]);
      }
      for (size_t k = 0; k < probe_extra_cols.size(); ++k) {
        out.columns[build_width + k].push_back(
            probe.columns[static_cast<size_t>(probe_extra_cols[k])][pr]);
      }
      ++emitted;
    }
  }
  return emitted;
}

/// Reorders `input`'s columns into `target_names` order (names must be a
/// permutation of the input's). Keeps chunk placement; remaps the
/// partitioning column and preserves the planner estimate.
Relation ReorderColumns(Relation&& input,
                        const std::vector<std::string>& target_names) {
  if (input.column_names() == target_names) return std::move(input);
  std::vector<int> source_of(target_names.size());
  for (size_t c = 0; c < target_names.size(); ++c) {
    source_of[c] = input.ColumnIndex(target_names[c]);
  }
  Relation output(target_names, input.num_chunks());
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    for (size_t c = 0; c < target_names.size(); ++c) {
      output.mutable_chunks()[w].columns[c] = std::move(
          input.mutable_chunks()[w].columns[static_cast<size_t>(
              source_of[c])]);
    }
  }
  if (input.hash_partitioned_by() >= 0) {
    const std::string& part_name =
        input.column_names()[static_cast<size_t>(
            input.hash_partitioned_by())];
    output.set_hash_partitioned_by(output.ColumnIndex(part_name));
  }
  if (input.planner_bytes_set()) {
    cluster::ClusterConfig dummy;
    output.set_planner_bytes(input.PlannerBytes(dummy));
  }
  return output;
}

/// Gathers every row of `relation` into a single chunk (for broadcast).
RelationChunk GatherAll(const Relation& relation) {
  RelationChunk gathered;
  gathered.columns.resize(relation.num_columns());
  for (const RelationChunk& chunk : relation.chunks()) {
    for (size_t c = 0; c < chunk.columns.size(); ++c) {
      gathered.columns[c].insert(gathered.columns[c].end(),
                                 chunk.columns[c].begin(),
                                 chunk.columns[c].end());
    }
  }
  return gathered;
}

}  // namespace

Relation RepartitionByColumn(const Relation& input, int column_index,
                             uint32_t num_workers,
                             cluster::CostModel& cost) {
  if (input.hash_partitioned_by() == column_index &&
      input.num_chunks() == num_workers) {
    return input;  // Already placed correctly; free.
  }
  cost.ChargeShuffle(input.EstimatedBytes(cost.config()));
  Relation output(input.column_names(), num_workers);
  for (const RelationChunk& chunk : input.chunks()) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      uint32_t target = static_cast<uint32_t>(
          Mix64(chunk.columns[static_cast<size_t>(column_index)][r]) %
          num_workers);
      RelationChunk& out = output.mutable_chunks()[target];
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
  }
  output.set_hash_partitioned_by(column_index);
  return output;
}

Result<JoinResult> HashJoin(const Relation& left, const Relation& right,
                            const JoinOptions& options,
                            cluster::CostModel& cost) {
  SharedColumns shared = FindSharedColumns(left, right);
  if (shared.left.empty()) {
    return Status::InvalidArgument(
        "join requires at least one shared column; got [" +
        StrJoin(left.column_names(), ",") + "] vs [" +
        StrJoin(right.column_names(), ",") + "]");
  }
  const cluster::ClusterConfig& config = cost.config();
  // Broadcast planning uses the *planner* estimates (base-relation sizes;
  // join outputs are "unknown" and never broadcast — Spark 2.1 semantics).
  uint64_t left_planner = left.PlannerBytes(config);
  uint64_t right_planner = right.PlannerBytes(config);
  uint32_t num_workers = config.num_workers;
  uint64_t threshold = options.broadcast_threshold_bytes != 0
                           ? options.broadcast_threshold_bytes
                           : config.broadcast_threshold_bytes;

  bool broadcast = options.allow_broadcast &&
                   std::min(left_planner, right_planner) <= threshold;

  if (broadcast) {
    // Broadcast the (planner-)smaller side; the bigger side never moves.
    const bool left_is_small = left_planner <= right_planner;
    const Relation& small = left_is_small ? left : right;
    const Relation& big = left_is_small ? right : left;

    SharedColumns small_big = FindSharedColumns(small, big);
    OutputLayout layout = MakeOutputLayout(small, big, small_big);

    // Pipelined into the caller's open stage: no stage boundary.
    cost.ChargeBroadcast(small.EstimatedBytes(config));
    RelationChunk small_all = GatherAll(small);

    Relation output(layout.names, big.num_chunks());
    for (uint32_t w = 0; w < big.num_chunks(); ++w) {
      const RelationChunk& big_chunk = big.chunks()[w];
      uint64_t emitted =
          JoinChunks(small_all, small_big.left, big_chunk, small_big.right,
                     layout.probe_extra_cols, output.mutable_chunks()[w]);
      // Every worker builds over the full broadcast relation and probes
      // its local slice of the big side.
      cost.ChargeCpuRows(w, small_all.num_rows() + big_chunk.num_rows() +
                                emitted);
    }

    // The big side's placement is preserved, so its partitioning column
    // (if any) still holds in the output.
    if (big.hash_partitioned_by() >= 0) {
      const std::string& part_name =
          big.column_names()[static_cast<size_t>(big.hash_partitioned_by())];
      int out_index = output.ColumnIndex(part_name);
      output.set_hash_partitioned_by(out_index);
    }
    output.set_planner_bytes(Relation::kUnknownPlannerBytes);
    // Canonical output layout is left-major regardless of which side was
    // broadcast, so plans are insensitive to the physical strategy.
    SharedColumns left_right = FindSharedColumns(left, right);
    OutputLayout canonical = MakeOutputLayout(left, right, left_right);
    return JoinResult{ReorderColumns(std::move(output), canonical.names),
                      JoinStrategy::kBroadcast};
  }

  // Shuffle join: a stage boundary. Close the caller's pipeline stage,
  // open the post-shuffle stage, and leave it open for downstream work.
  cost.EndStage();
  cost.BeginStage("shuffle_join");
  Relation left_parts = options.reuse_partitioning
                            ? RepartitionByColumn(left, shared.left[0],
                                                  num_workers, cost)
                            : [&] {
                                Relation copy = left;
                                copy.set_hash_partitioned_by(-1);
                                return RepartitionByColumn(copy, shared.left[0],
                                                           num_workers, cost);
                              }();
  Relation right_parts = options.reuse_partitioning
                             ? RepartitionByColumn(right, shared.right[0],
                                                   num_workers, cost)
                             : [&] {
                                 Relation copy = right;
                                 copy.set_hash_partitioned_by(-1);
                                 return RepartitionByColumn(
                                     copy, shared.right[0], num_workers, cost);
                               }();

  OutputLayout layout = MakeOutputLayout(left_parts, right_parts, shared);
  Relation output(layout.names, num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    const RelationChunk& l = left_parts.chunks()[w];
    const RelationChunk& r = right_parts.chunks()[w];
    uint64_t emitted = JoinChunks(l, shared.left, r, shared.right,
                                  layout.probe_extra_cols,
                                  output.mutable_chunks()[w]);
    cost.ChargeCpuRows(w, l.num_rows() + r.num_rows() + emitted);
  }
  output.set_hash_partitioned_by(shared.left[0]);
  output.set_planner_bytes(Relation::kUnknownPlannerBytes);
  return JoinResult{std::move(output), JoinStrategy::kShuffle};
}

Result<Relation> Filter(const Relation& input, const std::string& column_name,
                        TermId value, cluster::CostModel& cost) {
  int column = input.ColumnIndex(column_name);
  if (column < 0) {
    return Status::InvalidArgument("filter on unknown column " + column_name);
  }
  Relation output(input.column_names(), input.num_chunks());
  output.set_hash_partitioned_by(input.hash_partitioned_by());
  // Spark 2.1 static planning: filters do not discount sizeInBytes.
  if (input.planner_bytes_set()) {
    output.set_planner_bytes(input.PlannerBytes(cost.config()));
  }
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    const RelationChunk& chunk = input.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      if (chunk.columns[static_cast<size_t>(column)][r] != value) continue;
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
    cost.ChargeCpuRows(w, chunk.num_rows());
  }
  return output;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& column_names,
                         cluster::CostModel& cost) {
  std::vector<int> indices;
  indices.reserve(column_names.size());
  std::unordered_set<std::string> seen;
  for (const std::string& name : column_names) {
    int index = input.ColumnIndex(name);
    if (index < 0) {
      return Status::InvalidArgument("project on unknown column " + name);
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate projected column " + name);
    }
    indices.push_back(index);
  }
  Relation output(column_names, input.num_chunks());
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    const RelationChunk& chunk = input.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    for (size_t c = 0; c < indices.size(); ++c) {
      out.columns[c] = chunk.columns[static_cast<size_t>(indices[c])];
    }
    cost.ChargeCpuRows(w, chunk.num_rows());
  }
  // Projection keeps rows in place; partition column survives if selected.
  if (input.hash_partitioned_by() >= 0) {
    const std::string& part_name =
        input.column_names()[static_cast<size_t>(input.hash_partitioned_by())];
    output.set_hash_partitioned_by(output.ColumnIndex(part_name));
  }
  if (input.planner_bytes_set()) {
    output.set_planner_bytes(input.PlannerBytes(cost.config()));
  }
  return output;
}

Result<Relation> Distinct(const Relation& input, cluster::CostModel& cost) {
  // Stage boundary, like a shuffle join: close the caller's pipeline
  // stage, run the distinct exchange in a new one, leave it open.
  cost.EndStage();
  cost.BeginStage("distinct");
  // Shuffle by full-row hash so duplicates co-locate, then dedupe locally.
  cost.ChargeShuffle(input.EstimatedBytes(cost.config()));
  uint32_t num_workers = cost.config().num_workers;
  Relation shuffled(input.column_names(), num_workers);
  for (const RelationChunk& chunk : input.chunks()) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      uint64_t h = 0x51ed270b9a3e11c7ULL;
      for (const IdVector& column : chunk.columns) {
        h = HashCombine(h, column[r]);
      }
      RelationChunk& out = shuffled.mutable_chunks()[h % num_workers];
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
  }
  Relation output(input.column_names(), num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    const RelationChunk& chunk = shuffled.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    std::unordered_set<std::string> seen;
    seen.reserve(chunk.num_rows());
    std::string key;
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      key.clear();
      for (const IdVector& column : chunk.columns) {
        key.append(reinterpret_cast<const char*>(&column[r]),
                   sizeof(TermId));
      }
      if (!seen.insert(key).second) continue;
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
    cost.ChargeCpuRows(w, chunk.num_rows());
  }
  output.set_planner_bytes(Relation::kUnknownPlannerBytes);
  return output;
}

Relation Limit(const Relation& input, uint64_t limit) {
  Relation output(input.column_names(), input.num_chunks());
  uint64_t taken = 0;
  for (uint32_t w = 0; w < input.num_chunks() && taken < limit; ++w) {
    const RelationChunk& chunk = input.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(chunk.num_rows(), limit - taken));
    for (size_t c = 0; c < chunk.columns.size(); ++c) {
      out.columns[c].assign(chunk.columns[c].begin(),
                            chunk.columns[c].begin() + take);
    }
    taken += take;
  }
  return output;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  if (a.column_names() != b.column_names()) {
    return Status::InvalidArgument("union requires identical column names");
  }
  if (a.num_chunks() != b.num_chunks()) {
    return Status::InvalidArgument("union requires equal chunk counts");
  }
  Relation output(a.column_names(), a.num_chunks());
  for (uint32_t w = 0; w < a.num_chunks(); ++w) {
    RelationChunk& out = output.mutable_chunks()[w];
    for (size_t c = 0; c < out.columns.size(); ++c) {
      out.columns[c] = a.chunks()[w].columns[c];
      out.columns[c].insert(out.columns[c].end(),
                            b.chunks()[w].columns[c].begin(),
                            b.chunks()[w].columns[c].end());
    }
  }
  return output;
}

}  // namespace prost::engine
