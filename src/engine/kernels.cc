#include "engine/kernels.h"

#include <algorithm>

#include "common/hash.h"

namespace prost::engine::kernels {

using columnar::IdListColumn;
using columnar::IdVector;
using rdf::TermId;

void HashColumns(const RelationChunk& chunk, const std::vector<int>& key_cols,
                 size_t begin, size_t end, uint64_t* out) {
  const size_t n = end - begin;
  std::fill(out, out + n, kKeyHashSeed);
  for (int c : key_cols) {
    const TermId* column =
        chunk.columns[static_cast<size_t>(c)].data() + begin;
    for (size_t i = 0; i < n; ++i) {
      out[i] = HashCombine(out[i], column[i]);
    }
  }
}

void HashColumns(const RelationChunk& chunk, const std::vector<int>& key_cols,
                 size_t begin, size_t end, std::vector<uint64_t>& out) {
  out.resize(end - begin);
  HashColumns(chunk, key_cols, begin, end, out.data());
}

size_t CompareKeysAt(const RelationChunk& build,
                     const std::vector<int>& build_cols,
                     const RelationChunk& probe,
                     const std::vector<int>& probe_cols,
                     std::vector<uint32_t>& build_rows,
                     std::vector<uint32_t>& probe_rows) {
  const size_t n = build_rows.size();
  size_t kept = 0;
  if (build_cols.size() == 1) {
    // Single-key joins (the common case): one column pair, no inner loop.
    const TermId* b =
        build.columns[static_cast<size_t>(build_cols[0])].data();
    const TermId* p =
        probe.columns[static_cast<size_t>(probe_cols[0])].data();
    for (size_t i = 0; i < n; ++i) {
      build_rows[kept] = build_rows[i];
      probe_rows[kept] = probe_rows[i];
      kept += b[build_rows[i]] == p[probe_rows[i]] ? 1 : 0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      bool equal = true;
      for (size_t k = 0; k < build_cols.size(); ++k) {
        equal = equal &&
                build.columns[static_cast<size_t>(build_cols[k])]
                             [build_rows[i]] ==
                    probe.columns[static_cast<size_t>(probe_cols[k])]
                                 [probe_rows[i]];
      }
      build_rows[kept] = build_rows[i];
      probe_rows[kept] = probe_rows[i];
      kept += equal ? 1 : 0;
    }
  }
  build_rows.resize(kept);
  probe_rows.resize(kept);
  return kept;
}

void Iota(size_t begin, size_t end, std::vector<uint32_t>& sel) {
  const size_t old = sel.size();
  sel.resize(old + (end - begin));
  uint32_t* out = sel.data() + old;
  for (size_t r = begin; r < end; ++r) {
    *out++ = static_cast<uint32_t>(r);
  }
}

void Filter(const IdVector& column, TermId value, size_t begin, size_t end,
            std::vector<uint32_t>& sel) {
  const size_t old = sel.size();
  sel.resize(old + (end - begin));
  uint32_t* out = sel.data() + old;
  const TermId* col = column.data();
  for (size_t r = begin; r < end; ++r) {
    *out = static_cast<uint32_t>(r);
    out += col[r] == value ? 1 : 0;
  }
  sel.resize(static_cast<size_t>(out - sel.data()));
}

void FilterRowsEqual(const IdVector& a, const IdVector& b, size_t begin,
                     size_t end, std::vector<uint32_t>& sel) {
  const size_t old = sel.size();
  sel.resize(old + (end - begin));
  uint32_t* out = sel.data() + old;
  const TermId* pa = a.data();
  const TermId* pb = b.data();
  for (size_t r = begin; r < end; ++r) {
    *out = static_cast<uint32_t>(r);
    out += pa[r] == pb[r] ? 1 : 0;
  }
  sel.resize(static_cast<size_t>(out - sel.data()));
}

void Refine(const IdVector& column, TermId value,
            std::vector<uint32_t>& sel) {
  const TermId* col = column.data();
  uint32_t* out = sel.data();
  for (uint32_t r : sel) {
    *out = r;
    out += col[r] == value ? 1 : 0;
  }
  sel.resize(static_cast<size_t>(out - sel.data()));
}

void RefineNotNull(const IdVector& column, std::vector<uint32_t>& sel) {
  const TermId* col = column.data();
  uint32_t* out = sel.data();
  for (uint32_t r : sel) {
    *out = r;
    out += col[r] != rdf::kNullTermId ? 1 : 0;
  }
  sel.resize(static_cast<size_t>(out - sel.data()));
}

void RefineRowsEqual(const IdVector& a, const IdVector& b,
                     std::vector<uint32_t>& sel) {
  const TermId* pa = a.data();
  const TermId* pb = b.data();
  uint32_t* out = sel.data();
  for (uint32_t r : sel) {
    *out = r;
    out += pa[r] == pb[r] ? 1 : 0;
  }
  sel.resize(static_cast<size_t>(out - sel.data()));
}

void Gather(const IdVector& src, const std::vector<uint32_t>& sel,
            IdVector& dst) {
  const size_t old = dst.size();
  dst.resize(old + sel.size());
  TermId* out = dst.data() + old;
  const TermId* in = src.data();
  for (size_t i = 0; i < sel.size(); ++i) {
    out[i] = in[sel[i]];
  }
}

void GatherList(const IdListColumn& src, const std::vector<uint32_t>& sel,
                IdListColumn& dst) {
  size_t total = 0;
  for (uint32_t r : sel) total += src.RowSize(r);
  dst.offsets.reserve(dst.offsets.size() + sel.size());
  dst.values.reserve(dst.values.size() + total);
  for (uint32_t r : sel) {
    dst.values.insert(dst.values.end(), src.values.begin() + src.offsets[r],
                      src.values.begin() + src.offsets[r + 1]);
    dst.offsets.push_back(static_cast<uint32_t>(dst.values.size()));
  }
}

}  // namespace prost::engine::kernels
