#ifndef PROST_ENGINE_OPERATORS_H_
#define PROST_ENGINE_OPERATORS_H_

#include <optional>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/status.h"
#include "engine/exec_context.h"
#include "engine/relation.h"

namespace prost::engine {

/// Which physical strategy a join uses (resolved at plan time by the
/// optimizer's JoinStrategyPass, or derived inside HashJoin when no plan
/// provided one; exposed for tests and the ablation benches).
enum class JoinStrategy {
  kBroadcast,
  kShuffle,
};

/// Join-strategy knobs — the engine's stand-in for Catalyst's physical
/// planning (§3.3: "the optimizer can choose the type of joins to perform,
/// for example if one of the relations involved is small, a broadcast join
/// will be performed"). The A2/A3 flags here are part of the ablation
/// matrix documented in DESIGN.md §4.
struct JoinOptions {
  /// Relations whose *planner* estimate (Relation::PlannerBytes) is at or
  /// below this are broadcast instead of shuffled. 0 means "use the
  /// cluster config's broadcast_threshold_bytes" (the common case — the
  /// threshold scales with the simulated cluster).
  uint64_t broadcast_threshold_bytes = 0;

  /// Disables broadcast joins entirely (A2 ablation; also the SPARQLGX
  /// baseline, which joins plain RDDs without Catalyst).
  bool allow_broadcast = true;

  /// When true, a side that is already hash-partitioned on the join key
  /// skips its shuffle. Spark 2.1 gets no such guarantee from
  /// subject-partitioned Parquet files (PRoST does not use bucketing), so
  /// the faithful default is false; the A3 ablation bench shows what
  /// partitioning-aware planning would buy.
  bool reuse_partitioning = false;

  /// Strategy pre-resolved by the plan-time optimizer. When set, HashJoin
  /// executes it (and paranoid builds assert it matches what the run-time
  /// derivation would have picked); when unset, HashJoin derives the
  /// strategy itself from the inputs' PlannerBytes.
  std::optional<JoinStrategy> planned_strategy;
};

/// The one broadcast/shuffle decision rule, shared by the plan-time
/// JoinStrategyPass and HashJoin's run-time derivation: broadcast when
/// allowed and the smaller side's planner estimate is at or below the
/// effective threshold.
JoinStrategy ResolveJoinStrategy(uint64_t left_planner_bytes,
                                 uint64_t right_planner_bytes,
                                 const JoinOptions& options,
                                 const cluster::ClusterConfig& config);

struct JoinResult {
  Relation relation;
  JoinStrategy strategy = JoinStrategy::kShuffle;
};

/// Hash equi-join on all column names shared between `left` and `right`.
/// Errors if they share no column (the Join Tree translator never emits
/// cross products).
///
/// Stage protocol (Spark pipelining): the caller keeps one stage open for
/// the whole query pipeline. A *broadcast* join charges its work into the
/// open stage — in Spark it does not introduce a stage boundary. A
/// *shuffle* join closes the open stage (the map side ends there), opens
/// a new one carrying the shuffle transfer and the build/probe work, and
/// leaves it open for downstream operators.
///
/// Output order is deterministic regardless of `exec`: within each output
/// chunk, rows are ordered by (probe row, build row). A parallel `exec`
/// runs a partitioned hash join — the build side is hash-partitioned into
/// per-thread partitions built concurrently, and probe morsels run in
/// parallel, merged back in morsel order — producing a relation
/// bit-identical to the serial path's.
Result<JoinResult> HashJoin(const Relation& left, const Relation& right,
                            const JoinOptions& options,
                            cluster::CostModel& cost,
                            const ExecContext* exec = nullptr);

/// Keeps rows where column `column_name` equals `value`. Parallel `exec`
/// filters morsels concurrently and merges them in morsel order (output
/// bit-identical to serial).
Result<Relation> Filter(const Relation& input, const std::string& column_name,
                        TermId value, cluster::CostModel& cost,
                        const ExecContext* exec = nullptr);

/// Keeps only `column_names`, in that order. Duplicate and unknown names
/// are errors. Parallel `exec` copies chunks concurrently.
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& column_names,
                         cluster::CostModel& cost,
                         const ExecContext* exec = nullptr);

/// Drops every column not in `keep` (which must be a subset of the input
/// columns, listed in input order). Unlike Project this is free — no CPU
/// charge, no span: it models the optimizer's early projection, where the
/// pruned columns are simply never materialized into the next exchange.
/// planner_bytes carries over verbatim (static planning: the planner
/// priced the unpruned scan) and the hash-partition column is remapped by
/// name.
Relation PruneColumns(Relation&& input, const std::vector<std::string>& keep);

/// Removes duplicate rows globally (shuffles by row hash, then dedupes
/// per worker). `exec` is only consulted for its profiling sink.
Result<Relation> Distinct(const Relation& input, cluster::CostModel& cost,
                          const ExecContext* exec = nullptr);

/// Keeps at most `limit` rows (driver-side truncation after collect; the
/// paper's WatDiv queries do not push limits down).
Relation Limit(const Relation& input, uint64_t limit);

/// Concatenates two relations with identical column names chunk-wise.
Result<Relation> Union(const Relation& a, const Relation& b);

/// Re-distributes `input` so rows with equal values in `column_index` land
/// on the same worker. Charges shuffle bytes unless already partitioned.
/// Parallel `exec` buckets morsels concurrently, then assembles target
/// chunks concurrently; row order per target chunk matches the serial
/// path (source chunk order, then source row order).
Relation RepartitionByColumn(const Relation& input, int column_index,
                             uint32_t num_workers,
                             cluster::CostModel& cost,
                             const ExecContext* exec = nullptr);

}  // namespace prost::engine

#endif  // PROST_ENGINE_OPERATORS_H_
