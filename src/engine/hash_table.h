#ifndef PROST_ENGINE_HASH_TABLE_H_
#define PROST_ENGINE_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prost::engine {

/// Flat open-addressing hash table mapping 64-bit key hashes to runs of
/// build-row ids, the join build index behind HashJoin.
///
/// Layout: linear probing over a power-of-two slot array (16-byte slots:
/// hash, payload offset, run length), with every run stored contiguously
/// in one shared payload array. A lookup is one probe walk plus a
/// pointer-pair return — no per-key node allocations, no bucket lists,
/// and probing touches at most a few cache lines.
///
/// Determinism contract (the same one BuildChunkIndex carried): within a
/// run, row ids appear in the order they were inserted, and every caller
/// inserts in ascending row order — so a probe emits matches ascending by
/// build row regardless of thread count.
///
/// Build is two passes over the input (count runs, then fill), sized
/// upfront to a load factor of at most 1/2, so there is no incremental
/// rehashing on the hot path. The table is reusable: rebuilding reuses
/// the slot, payload, and cursor allocations from the previous build.
class FlatHashTable {
 public:
  /// A run of row ids for one hash: [begin, end), insertion (ascending
  /// row) order. Empty when the hash is absent.
  struct Range {
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;

    bool empty() const { return begin == end; }
    size_t size() const { return static_cast<size_t>(end - begin); }
  };

  /// Builds over rows 0..n-1, where hashes[r] is row r's key hash.
  /// Replaces any previous contents.
  void Build(const uint64_t* hashes, size_t n);

  /// Builds over an explicit row subset. `rows` lists the row ids to
  /// insert, in the order their runs should carry them (callers pass
  /// ascending row ids); `row_hashes` is indexed by row id. Replaces any
  /// previous contents.
  void BuildFromRows(const uint32_t* rows, size_t n,
                     const uint64_t* row_hashes);

  /// The run of row ids whose key hash equals `hash` (empty if none).
  /// Pointers remain valid until the next Build/Clear.
  Range Lookup(uint64_t hash) const {
    if (slots_.empty()) return Range{};
    size_t i = hash & mask_;
    while (slots_[i].count != 0) {
      if (slots_[i].hash == hash) {
        const uint32_t* begin = payload_.data() + slots_[i].offset;
        return Range{begin, begin + slots_[i].count};
      }
      i = (i + 1) & mask_;
    }
    return Range{};
  }

  /// Drops all entries, keeping capacity for reuse.
  void Clear();

  /// Total inserted rows.
  size_t size() const { return payload_.size(); }

  /// Slot-array capacity (power of two; 0 before the first build).
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t offset = 0;
    uint32_t count = 0;  // 0 == empty slot.
  };

  /// Sizes the slot array for `n` rows and zeroes it.
  void Reset(size_t n);

  /// Pass 1: route `hash` to its slot, counting one more row for it.
  void CountOne(uint64_t hash);

  /// Turns per-slot counts into payload offsets (slot order) and zeroes
  /// the fill cursors of occupied slots.
  void AssignOffsets();

  /// Pass 2: append `row` to the (already counted) run for `hash`.
  void FillOne(uint64_t hash, uint32_t row) {
    size_t i = hash & mask_;
    while (slots_[i].count == 0 || slots_[i].hash != hash) {
      i = (i + 1) & mask_;
    }
    payload_[slots_[i].offset + fill_[i]++] = row;
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> payload_;  // Row ids, one contiguous run per hash.
  std::vector<uint32_t> fill_;     // Per-slot fill cursor (pass 2 only).
  uint64_t mask_ = 0;
};

}  // namespace prost::engine

#endif  // PROST_ENGINE_HASH_TABLE_H_
