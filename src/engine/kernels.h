#ifndef PROST_ENGINE_KERNELS_H_
#define PROST_ENGINE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "columnar/column.h"
#include "engine/relation.h"

namespace prost::engine::kernels {

/// Column-wise batch kernels for the engine's hot loops. The shared
/// vocabulary is the *selection vector*: a std::vector<uint32_t> of row
/// ids (ascending) into a chunk, produced by the Filter/Refine family and
/// consumed by Gather. Operators filter into selections and materialize
/// with per-column bulk gathers instead of pushing rows value-by-value
/// across columns — the inner loops touch one column at a time
/// (cache-friendly) and carry no per-row branches on the append side.
///
/// Contract: every kernel is append-only and order-preserving, so a
/// kernel-built output is byte-identical to the row-at-a-time loop it
/// replaced. None of them charge the CostModel — charging stays on the
/// coordinating thread in the operators.

/// Rows processed per probe batch inside join/filter loops. Sized so the
/// scratch (hashes + candidate pairs) of one batch stays L1/L2-resident.
inline constexpr size_t kBatchRows = 1024;

/// Seed of the multi-column key hash (shared by build and probe sides).
inline constexpr uint64_t kKeyHashSeed = 0x9ae16a3b2f90404fULL;

/// Hashes rows [begin, end) of `chunk`'s `key_cols` into `out` (indexed
/// from 0, i.e. out[i] is row begin+i), one column at a time. Equals the
/// per-row KeyHash fold: HashCombine over the key columns in order,
/// seeded with kKeyHashSeed.
void HashColumns(const RelationChunk& chunk, const std::vector<int>& key_cols,
                 size_t begin, size_t end, uint64_t* out);

/// As above, resizing `out` to end - begin first.
void HashColumns(const RelationChunk& chunk, const std::vector<int>& key_cols,
                 size_t begin, size_t end, std::vector<uint64_t>& out);

/// Batch key verification for hash-match candidates: keeps the pairs
/// (build_rows[i], probe_rows[i]) whose key columns compare equal,
/// compacting both vectors in place (stable — surviving pairs keep their
/// relative order). Returns the surviving count.
size_t CompareKeysAt(const RelationChunk& build,
                     const std::vector<int>& build_cols,
                     const RelationChunk& probe,
                     const std::vector<int>& probe_cols,
                     std::vector<uint32_t>& build_rows,
                     std::vector<uint32_t>& probe_rows);

/// Appends row ids begin..end-1 to `sel` (the no-predicate selection).
void Iota(size_t begin, size_t end, std::vector<uint32_t>& sel);

/// Appends to `sel` the ids of rows in [begin, end) where column[r] ==
/// value. The append is branch-free (write then advance by the
/// predicate), so selectivity does not stall the pipeline.
void Filter(const columnar::IdVector& column, rdf::TermId value, size_t begin,
            size_t end, std::vector<uint32_t>& sel);

/// Appends to `sel` the ids of rows in [begin, end) where a[r] == b[r].
void FilterRowsEqual(const columnar::IdVector& a, const columnar::IdVector& b,
                     size_t begin, size_t end, std::vector<uint32_t>& sel);

/// Keeps the entries of `sel` where column[r] == value (stable, in
/// place).
void Refine(const columnar::IdVector& column, rdf::TermId value,
            std::vector<uint32_t>& sel);

/// Keeps the entries of `sel` where column[r] is non-NULL.
void RefineNotNull(const columnar::IdVector& column,
                   std::vector<uint32_t>& sel);

/// Keeps the entries of `sel` where a[r] == b[r] (stable, in place).
void RefineRowsEqual(const columnar::IdVector& a, const columnar::IdVector& b,
                     std::vector<uint32_t>& sel);

/// Appends src[sel[i]] for every selected row to `dst`, reserving once.
/// The bulk-materialization kernel: callers run it once per column
/// instead of pushing each row across all columns.
void Gather(const columnar::IdVector& src, const std::vector<uint32_t>& sel,
            columnar::IdVector& dst);

/// Appends the selected rows of a list column to `dst`, preserving each
/// row's cell (one offsets entry and a bulk value copy per row; an empty
/// cell stays an empty — NULL — row).
void GatherList(const columnar::IdListColumn& src,
                const std::vector<uint32_t>& sel, columnar::IdListColumn& dst);

}  // namespace prost::engine::kernels

#endif  // PROST_ENGINE_KERNELS_H_
