#ifndef PROST_ENGINE_EXEC_CONTEXT_H_
#define PROST_ENGINE_EXEC_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#include "common/thread_pool.h"

namespace prost::obs {
class QueryProfile;
}  // namespace prost::obs

namespace prost::engine {

/// Rows per morsel when a parallel operator splits a chunk. Small enough
/// that a 9-chunk relation yields many independent tasks, big enough that
/// per-task scheduling cost (one deque pop) is noise.
inline constexpr uint32_t kDefaultMorselRows = 8192;

/// Per-query resource budget, enforced deterministically between plan
/// operators (core/executor.cc): both limits are checked against
/// simulated quantities — intermediate/result row counts and the
/// simulated cluster clock — never against host wall time, so the same
/// query with the same budget either always completes or always fails
/// with the same Status, at any thread count. Zero means unlimited.
/// The serving layer (serve::SessionManager) attaches one per admitted
/// query; direct ProstDb callers run unbudgeted.
struct QueryBudget {
  /// Ceiling on any single operator's output cardinality (result rows
  /// included). Exceeding it fails the query with kResourceExhausted.
  uint64_t max_rows = 0;
  /// Ceiling on the query's simulated time: checked against the cost
  /// model's accounted clock after every operator.
  double max_simulated_millis = 0;

  bool Unlimited() const { return max_rows == 0 && max_simulated_millis == 0; }
};

/// Executor knobs, threaded from ProstDb::Options down to the operators.
struct ExecOptions {
  /// Intra-worker parallelism of the real C++ executor. 1 (the default)
  /// takes the serial operator paths unchanged; 0 means "use
  /// ClusterConfig::cores_per_worker" (the paper's 6-core workers). This
  /// knob changes wall-clock only — the simulated cluster clock already
  /// models worker parallelism and is charged identically either way.
  uint32_t num_threads = 1;

  /// Rows per morsel for parallel scans, filters, and join probes.
  /// 0 means kDefaultMorselRows.
  uint32_t morsel_rows = kDefaultMorselRows;
};

/// Per-execution view handed to operators: a (possibly absent) thread
/// pool plus the morsel geometry. A default-constructed context — or one
/// over a single-threaded pool — selects the serial paths.
///
/// The context itself is immutable during execution and owns no locks;
/// shared mutable state inside a parallel region lives behind the pool's
/// ranked mutexes (DESIGN.md §11), and everything the context points at
/// (profile, cost model) stays confined to the coordinating thread.
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(ThreadPool* pool,
                       uint32_t morsel_rows = kDefaultMorselRows,
                       obs::QueryProfile* profile = nullptr,
                       const QueryBudget* budget = nullptr)
      : pool_(pool),
        morsel_rows_(morsel_rows == 0 ? kDefaultMorselRows : morsel_rows),
        profile_(profile),
        budget_(budget) {}

  ThreadPool* pool() const { return pool_; }

  /// Per-query budget, or null (unlimited). Checked by the executor on
  /// the coordinating thread between operators.
  const QueryBudget* budget() const { return budget_; }

  /// Observability sink, or null when profiling is off. Spans are opened
  /// and closed on the coordinating thread only (the same contract the
  /// CostModel already imposes on Charge* calls).
  obs::QueryProfile* profile() const { return profile_; }
  uint32_t num_threads() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }
  bool parallel() const { return num_threads() > 1; }
  uint32_t morsel_rows() const { return morsel_rows_; }

  size_t NumMorsels(size_t rows) const {
    return (rows + morsel_rows_ - 1) / morsel_rows_;
  }

 private:
  ThreadPool* pool_ = nullptr;
  uint32_t morsel_rows_ = kDefaultMorselRows;
  obs::QueryProfile* profile_ = nullptr;
  const QueryBudget* budget_ = nullptr;
};

/// The budget carried by `exec`, or null (unlimited).
inline const QueryBudget* BudgetOf(const ExecContext* exec) {
  return exec != nullptr ? exec->budget() : nullptr;
}

/// True when `exec` selects the parallel operator paths. Operators take a
/// nullable pointer so every existing call site keeps its meaning.
inline bool IsParallel(const ExecContext* exec) {
  return exec != nullptr && exec->parallel();
}

/// The profiling sink carried by `exec`, or null (profiling off).
inline obs::QueryProfile* ProfileOf(const ExecContext* exec) {
  return exec != nullptr ? exec->profile() : nullptr;
}

}  // namespace prost::engine

#endif  // PROST_ENGINE_EXEC_CONTEXT_H_
