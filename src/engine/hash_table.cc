#include "engine/hash_table.h"

#include <algorithm>
#include <bit>

namespace prost::engine {

void FlatHashTable::Reset(size_t n) {
  // Load factor <= 1/2 keeps linear-probe chains short; the minimum
  // capacity keeps tiny builds out of degenerate 1-2 slot tables.
  size_t capacity = std::bit_ceil(std::max<size_t>(16, n * 2));
  slots_.assign(capacity, Slot{});
  fill_.resize(capacity);
  payload_.resize(n);
  mask_ = capacity - 1;
}

void FlatHashTable::CountOne(uint64_t hash) {
  size_t i = hash & mask_;
  while (slots_[i].count != 0 && slots_[i].hash != hash) {
    i = (i + 1) & mask_;
  }
  slots_[i].hash = hash;
  ++slots_[i].count;
}

void FlatHashTable::AssignOffsets() {
  uint32_t offset = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].count == 0) continue;
    slots_[i].offset = offset;
    offset += slots_[i].count;
    fill_[i] = 0;
  }
}

void FlatHashTable::Build(const uint64_t* hashes, size_t n) {
  Reset(n);
  for (size_t r = 0; r < n; ++r) CountOne(hashes[r]);
  AssignOffsets();
  for (size_t r = 0; r < n; ++r) {
    FillOne(hashes[r], static_cast<uint32_t>(r));
  }
}

void FlatHashTable::BuildFromRows(const uint32_t* rows, size_t n,
                                  const uint64_t* row_hashes) {
  Reset(n);
  for (size_t i = 0; i < n; ++i) CountOne(row_hashes[rows[i]]);
  AssignOffsets();
  for (size_t i = 0; i < n; ++i) FillOne(row_hashes[rows[i]], rows[i]);
}

void FlatHashTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  payload_.clear();
}

}  // namespace prost::engine
