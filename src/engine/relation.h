#ifndef PROST_ENGINE_RELATION_H_
#define PROST_ENGINE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "columnar/column.h"
#include "common/status.h"

namespace prost::engine {

using columnar::IdVector;
using rdf::TermId;

/// One worker's slice of a distributed relation: equal-length flat id
/// columns (column-oriented).
struct RelationChunk {
  std::vector<IdVector> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
};

/// A row materialized from a relation (testing / result collection).
using Row = std::vector<TermId>;

/// A distributed relation: named columns (SPARQL variable names), one
/// chunk per worker. This is the engine's DataFrame equivalent.
class Relation {
 public:
  Relation() = default;
  /// Creates an empty relation with `num_workers` empty chunks.
  Relation(std::vector<std::string> column_names, uint32_t num_workers);

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t num_columns() const { return column_names_.size(); }
  int ColumnIndex(const std::string& name) const;

  const std::vector<RelationChunk>& chunks() const { return chunks_; }
  std::vector<RelationChunk>& mutable_chunks() { return chunks_; }
  uint32_t num_chunks() const { return static_cast<uint32_t>(chunks_.size()); }

  /// Sum of rows across chunks.
  uint64_t TotalRows() const;

  /// Estimated wire size (rows * columns * bytes_per_value).
  uint64_t EstimatedBytes(const cluster::ClusterConfig& config) const;

  /// Column index this relation is hash-partitioned by, or -1 when the
  /// placement carries no co-location guarantee. Joins use this to skip
  /// redundant shuffles, mirroring Spark's `outputPartitioning`.
  int hash_partitioned_by() const { return hash_partitioned_by_; }
  void set_hash_partitioned_by(int column) { hash_partitioned_by_ = column; }

  /// Sentinel planner size: "derived relation, size unknown" — Spark 2.1
  /// treats join outputs as enormous, so they never broadcast.
  static constexpr uint64_t kUnknownPlannerBytes = ~0ull;

  /// The *planner's* size estimate, used for broadcast decisions. Scans
  /// set it from storage statistics; derived relations (join outputs)
  /// carry kUnknownPlannerBytes, mirroring Spark 2.1's static planning
  /// where only base relations have trustworthy sizeInBytes — except
  /// join outputs the optimizer priced exactly from characteristic
  /// sets, which the executor stamps with that size. When never set,
  /// falls back to the actual estimated size.
  uint64_t PlannerBytes(const cluster::ClusterConfig& config) const {
    return planner_bytes_set_ ? planner_bytes_ : EstimatedBytes(config);
  }
  void set_planner_bytes(uint64_t bytes) {
    planner_bytes_ = bytes;
    planner_bytes_set_ = true;
  }
  bool planner_bytes_set() const { return planner_bytes_set_; }
  /// The raw stamped value (0 when never set) — config-free, for
  /// observability rather than broadcast decisions.
  uint64_t planner_bytes_raw() const { return planner_bytes_; }

  /// Checks chunk/column shape consistency.
  Status Validate() const;

  /// Gathers all rows to the caller (like Spark collect()).
  std::vector<Row> CollectRows() const;

  /// Collected rows, sorted — canonical form for result comparison.
  std::vector<Row> CollectSortedRows() const;

  /// Builds a single-chunk relation from rows (testing convenience).
  static Relation FromRows(std::vector<std::string> column_names,
                           const std::vector<Row>& rows,
                           uint32_t num_workers);

 private:
  std::vector<std::string> column_names_;
  std::vector<RelationChunk> chunks_;
  int hash_partitioned_by_ = -1;
  uint64_t planner_bytes_ = 0;
  bool planner_bytes_set_ = false;
};

}  // namespace prost::engine

#endif  // PROST_ENGINE_RELATION_H_
