#include "engine/relation.h"

#include <algorithm>

#include "common/hash.h"
#include "common/str_util.h"

namespace prost::engine {

Relation::Relation(std::vector<std::string> column_names,
                   uint32_t num_workers)
    : column_names_(std::move(column_names)) {
  chunks_.resize(num_workers);
  for (RelationChunk& chunk : chunks_) {
    chunk.columns.resize(column_names_.size());
  }
}

int Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

uint64_t Relation::TotalRows() const {
  uint64_t total = 0;
  for (const RelationChunk& chunk : chunks_) total += chunk.num_rows();
  return total;
}

uint64_t Relation::EstimatedBytes(const cluster::ClusterConfig& config) const {
  return static_cast<uint64_t>(static_cast<double>(TotalRows()) *
                               static_cast<double>(num_columns()) *
                               config.bytes_per_value);
}

Status Relation::Validate() const {
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const RelationChunk& chunk = chunks_[c];
    if (chunk.columns.size() != column_names_.size()) {
      return Status::Internal(
          StrFormat("chunk %zu has %zu columns, expected %zu", c,
                    chunk.columns.size(), column_names_.size()));
    }
    for (size_t i = 1; i < chunk.columns.size(); ++i) {
      if (chunk.columns[i].size() != chunk.columns[0].size()) {
        return Status::Internal(
            StrFormat("chunk %zu column %zu row-count mismatch", c, i));
      }
    }
  }
  if (hash_partitioned_by_ >= static_cast<int>(column_names_.size())) {
    return Status::Internal("hash_partitioned_by out of range");
  }
  return Status::OK();
}

std::vector<Row> Relation::CollectRows() const {
  std::vector<Row> rows;
  rows.reserve(TotalRows());
  for (const RelationChunk& chunk : chunks_) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      Row row(num_columns());
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        row[c] = chunk.columns[c][r];
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<Row> Relation::CollectSortedRows() const {
  std::vector<Row> rows = CollectRows();
  std::sort(rows.begin(), rows.end());
  return rows;
}

Relation Relation::FromRows(std::vector<std::string> column_names,
                            const std::vector<Row>& rows,
                            uint32_t num_workers) {
  Relation relation(std::move(column_names), num_workers);
  // Rows deal round-robin, so every chunk gets at most ceil(n / chunks).
  size_t per_chunk =
      (rows.size() + relation.num_chunks() - 1) / relation.num_chunks();
  for (RelationChunk& chunk : relation.mutable_chunks()) {
    for (IdVector& column : chunk.columns) column.reserve(per_chunk);
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    RelationChunk& chunk =
        relation.mutable_chunks()[r % relation.num_chunks()];
    for (size_t c = 0; c < relation.num_columns(); ++c) {
      chunk.columns[c].push_back(rows[r][c]);
    }
  }
  return relation;
}

}  // namespace prost::engine
