#ifndef PROST_SERVE_SESSION_MANAGER_H_
#define PROST_SERVE_SESSION_MANAGER_H_

#include <cstdint>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/prost_db.h"
#include "engine/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace prost::serve {

/// Admission policy for a SessionManager. Defaults model a small serving
/// deployment: a handful of queries execute concurrently, a short FIFO
/// queue absorbs bursts, and everything beyond that is rejected rather
/// than buffered without bound.
struct AdmissionOptions {
  /// Queries executing concurrently. Further arrivals queue or reject.
  /// 0 is normalized to 1 (an admission controller that admits nothing
  /// would deadlock every caller).
  uint32_t max_in_flight = 4;

  /// Callers allowed to block waiting for an execution slot, FIFO. Only
  /// consulted when queue_when_full is true.
  uint32_t max_queued = 16;

  /// Full capacity policy: true parks the caller in the FIFO queue
  /// (until max_queued, then rejects); false rejects immediately with
  /// kUnavailable — the load-shedding configuration.
  bool queue_when_full = true;

  /// Per-query resource budget applied to every admitted query.
  /// Default-constructed means unlimited. Enforced deterministically
  /// against simulated quantities (engine::QueryBudget), so admission
  /// never turns a query flaky: the same query under the same budget
  /// always completes or always fails with kResourceExhausted.
  engine::QueryBudget budget;
};

/// The serving front end over one ProstDb: accepts N concurrent sessions
/// (callers), applies admission control, and executes admitted queries
/// concurrently on the db's shared pool (DESIGN.md §12).
///
/// Contracts:
///  * Concurrency — Execute is safe from any number of threads. Admitted
///    queries run genuinely in parallel (ProstDb::Execute no longer
///    serializes); results are bit-identical to serial runs.
///  * Admission — at most max_in_flight queries execute at once; waiters
///    are served strictly FIFO (ticket order). When queueing is off or
///    the queue is full, callers get kUnavailable immediately — never a
///    silent drop, never an unbounded wait.
///  * Shutdown — Shutdown() (or destruction) stops intake, fails queued
///    callers with kUnavailable, and blocks until all in-flight queries
///    drain. Idempotent; concurrent with Execute.
///  * Locking — mu_ (rank kServeSession, the outermost rank) is held
///    only across admission state transitions, never across an
///    execution, so the serve layer adds queueing without stacking under
///    the engine's locks.
///
///   serve::SessionManager manager(db, {.max_in_flight = 8});
///   // from any number of client threads:
///   auto result = manager.ExecuteSparql("SELECT ...");
///   manager.Shutdown();
class SessionManager {
 public:
  /// An RAII execution slot: while alive it occupies one in-flight unit.
  /// Execute holds one around the db call; tests hold them directly to
  /// pin the admission state deterministically (fill capacity, then
  /// observe queue/reject behavior with no execution race).
  class Slot {
   public:
    Slot(Slot&& other) noexcept : manager_(other.manager_) {
      other.manager_ = nullptr;
    }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    ~Slot() { Release(); }

    /// Returns the slot early (the destructor then does nothing).
    void Release();

   private:
    friend class SessionManager;
    explicit Slot(SessionManager* manager) : manager_(manager) {}
    SessionManager* manager_;
  };

  /// `db` must outlive the manager.
  SessionManager(const core::ProstDb& db, AdmissionOptions options);
  /// Runs Shutdown(): blocks until in-flight queries drain.
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits one unit of work per the admission policy: returns a Slot
  /// (possibly after a FIFO wait), or kUnavailable when rejected
  /// (queue disabled/full, or shutting down).
  Result<Slot> Admit();

  /// Admission-controlled query execution: Admit, run on the db with the
  /// configured budget, release. `profile` is optional per-query tracing
  /// (must belong to this call only). Failure modes are the db's own
  /// errors, kResourceExhausted (budget), or kUnavailable (admission).
  Result<core::QueryResult> Execute(const sparql::Query& query,
                                    obs::QueryProfile* profile = nullptr);

  /// Parses and executes a SPARQL string under admission control.
  Result<core::QueryResult> ExecuteSparql(std::string_view text);

  /// Stops intake and drains: new and queued callers fail with
  /// kUnavailable; returns once every in-flight query has finished.
  /// Safe to call multiple times and from multiple threads.
  void Shutdown();

  uint32_t in_flight() const;
  uint32_t queued() const;
  bool draining() const;
  const AdmissionOptions& options() const { return options_; }

  /// The database every admitted query runs against. The network front
  /// end (net::Server) uses it to decode result relations back to
  /// lexical terms for serialization.
  const core::ProstDb& db() const { return db_; }

  /// Serving metrics, separate from the db's query metrics:
  /// serve.admitted / completed / failed / budget_exhausted counters,
  /// serve.rejected.queue_full / serve.rejected.shutdown counters plus
  /// the serve.rejected_total aggregate (rejected_total always equals
  /// queue_full + shutdown exactly), serve.in_flight / serve.queued
  /// gauges and the serve.queue_depth alias exported for the /metrics
  /// endpoint, and a serve.simulated_ms histogram over
  /// admitted-and-completed queries. Thread-safe.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  enum class State { kRunning, kDraining, kStopped };

  /// Decrements in-flight and wakes the queue head / drain waiter.
  void ReleaseSlot();

  /// Sets serve.queued and its serve.queue_depth alias to `depth`.
  void SetQueueGauges(uint32_t depth) PROST_REQUIRES(mu_);
  /// Bumps serve.rejected.<reason> and serve.rejected_total together.
  void CountRejection(const char* reason) PROST_REQUIRES(mu_);

  const core::ProstDb& db_;
  const AdmissionOptions options_;

  mutable Mutex<LockRank::kServeSession> mu_;
  /// Queue-head and capacity waiters; broadcast on every release and on
  /// state changes (waiters filter by ticket).
  CondVar admission_cv_;
  /// Shutdown's wait for in_flight_ == 0.
  CondVar drain_cv_;
  State state_ PROST_GUARDED_BY(mu_) = State::kRunning;
  uint32_t in_flight_ PROST_GUARDED_BY(mu_) = 0;
  uint32_t queued_ PROST_GUARDED_BY(mu_) = 0;
  /// FIFO tickets: an arrival that must wait takes next_ticket_++ and is
  /// admitted only when its ticket reaches front_ticket_ *and* capacity
  /// frees up, so waiters cannot overtake each other.
  uint64_t next_ticket_ PROST_GUARDED_BY(mu_) = 0;
  uint64_t front_ticket_ PROST_GUARDED_BY(mu_) = 0;

  /// Internally synchronized (own leaf mutex + atomic handles); updated
  /// both under mu_ (admission decisions) and outside it (post-execution
  /// accounting in Execute).
  mutable obs::MetricsRegistry metrics_;
};

}  // namespace prost::serve

#endif  // PROST_SERVE_SESSION_MANAGER_H_
