#include "serve/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"
#include "sparql/parser.h"

namespace prost::serve {

namespace {

/// Simulated-time buckets, same geometry as the db's query.simulated_ms.
const std::vector<double>& SimulatedMsBounds() {
  static const std::vector<double> kBounds = {1, 10, 100, 1000, 10000, 100000};
  return kBounds;
}

}  // namespace

/// Updates both queue-occupancy exports together: serve.queued (the
/// original gauge) and serve.queue_depth (the admission-state alias the
/// /metrics endpoint documents). They are always set to the same value
/// under mu_, so any snapshot shows them equal.
void SessionManager::SetQueueGauges(uint32_t depth) {
  metrics_.gauge("serve.queued").Set(depth);
  metrics_.gauge("serve.queue_depth").Set(depth);
}

/// One rejection: the per-reason counter plus the aggregate, so once the
/// rejecting callers have returned, serve.rejected_total ==
/// serve.rejected.queue_full + serve.rejected.shutdown exactly.
void SessionManager::CountRejection(const char* reason) {
  metrics_.counter(std::string("serve.rejected.") + reason).Increment();
  metrics_.counter("serve.rejected_total").Increment();
}

void SessionManager::Slot::Release() {
  if (manager_ == nullptr) return;
  manager_->ReleaseSlot();
  manager_ = nullptr;
}

SessionManager::SessionManager(const core::ProstDb& db,
                               AdmissionOptions options)
    : db_(db), options_(options) {}

SessionManager::~SessionManager() { Shutdown(); }

Result<SessionManager::Slot> SessionManager::Admit() {
  const uint32_t capacity = std::max<uint32_t>(1, options_.max_in_flight);
  MutexLock lock(mu_);
  if (state_ != State::kRunning) {
    CountRejection("shutdown");
    return Status::Unavailable("session manager is shutting down");
  }
  // Fast path: free capacity and nobody queued ahead (the queued_ check
  // keeps admission strictly FIFO — a fresh arrival must not overtake a
  // parked waiter).
  if (in_flight_ < capacity && queued_ == 0) {
    ++in_flight_;
    metrics_.counter("serve.admitted").Increment();
    metrics_.gauge("serve.in_flight").Set(in_flight_);
    return Slot(this);
  }
  if (!options_.queue_when_full || queued_ >= options_.max_queued) {
    CountRejection("queue_full");
    return Status::Unavailable(StrFormat(
        "admission queue full: %u in flight (max %u), %u queued (max %u)",
        in_flight_, capacity, queued_,
        options_.queue_when_full ? options_.max_queued : 0));
  }
  // Park FIFO: served only when this ticket reaches the queue front AND
  // capacity frees up. Spurious wakeups and overtaking both fall out of
  // the predicate.
  const uint64_t ticket = next_ticket_++;
  ++queued_;
  SetQueueGauges(queued_);
  while (state_ == State::kRunning &&
         !(ticket == front_ticket_ && in_flight_ < capacity)) {
    admission_cv_.Wait(mu_);
  }
  --queued_;
  ++front_ticket_;
  SetQueueGauges(queued_);
  // The next ticket may now be at the front; drain watches queued_ too.
  admission_cv_.NotifyAll();
  if (queued_ == 0) drain_cv_.NotifyAll();
  if (state_ != State::kRunning) {
    CountRejection("shutdown");
    return Status::Unavailable("session manager shut down while queued");
  }
  ++in_flight_;
  metrics_.counter("serve.admitted").Increment();
  metrics_.gauge("serve.in_flight").Set(in_flight_);
  return Slot(this);
}

void SessionManager::ReleaseSlot() {
  MutexLock lock(mu_);
  --in_flight_;
  metrics_.gauge("serve.in_flight").Set(in_flight_);
  admission_cv_.NotifyAll();
  if (in_flight_ == 0) drain_cv_.NotifyAll();
}

Result<core::QueryResult> SessionManager::Execute(const sparql::Query& query,
                                                  obs::QueryProfile* profile) {
  PROST_ASSIGN_OR_RETURN(Slot slot, Admit());
  const engine::QueryBudget* budget =
      options_.budget.Unlimited() ? nullptr : &options_.budget;
  // The slot stays held across the db call (that is what in-flight
  // means), but mu_ is not: execution runs lock-free at this layer.
  Result<core::QueryResult> result = db_.Execute(query, profile, budget);
  slot.Release();
  if (result.ok()) {
    metrics_.counter("serve.completed").Increment();
    metrics_.histogram("serve.simulated_ms", SimulatedMsBounds())
        .Observe(result->simulated_millis);
  } else {
    metrics_.counter("serve.failed").Increment();
    if (result.status().code() == StatusCode::kResourceExhausted) {
      metrics_.counter("serve.budget_exhausted").Increment();
    }
  }
  return result;
}

Result<core::QueryResult> SessionManager::ExecuteSparql(
    std::string_view text) {
  // Parsing is cheap, deterministic, and touches no shared state, so it
  // runs before admission — a malformed query never occupies a slot.
  PROST_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  return Execute(query);
}

void SessionManager::Shutdown() {
  MutexLock lock(mu_);
  if (state_ == State::kStopped) return;
  if (state_ == State::kRunning) {
    state_ = State::kDraining;
    // Wake every queued waiter; their predicate sees kDraining and they
    // exit with kUnavailable.
    admission_cv_.NotifyAll();
  }
  // Drain: in-flight queries run to completion, queued callers leave.
  // Callers must still be joined before destroying the manager (they may
  // be between their final unlock and returning), same as any monitor.
  while (in_flight_ > 0 || queued_ > 0) drain_cv_.Wait(mu_);
  state_ = State::kStopped;
}

uint32_t SessionManager::in_flight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

uint32_t SessionManager::queued() const {
  MutexLock lock(mu_);
  return queued_;
}

bool SessionManager::draining() const {
  MutexLock lock(mu_);
  return state_ != State::kRunning;
}

}  // namespace prost::serve
