#ifndef PROST_PLAN_PASSES_H_
#define PROST_PLAN_PASSES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "common/status.h"
#include "engine/operators.h"
#include "plan/plan_ir.h"

namespace prost::stats {
class CardinalityEstimator;
}  // namespace prost::stats

namespace prost::plan {

/// What a pass may consult: the join knobs (A2 ablation / threshold
/// override), the cluster whose broadcast threshold applies, and the
/// store's cardinality estimator (null when the caller has no statistics;
/// the join_order pass then keeps the translator's heuristic order).
struct PassContext {
  engine::JoinOptions join;
  const cluster::ClusterConfig* cluster = nullptr;
  const stats::CardinalityEstimator* estimator = nullptr;
};

/// A rule-based plan rewrite. Passes mutate the plan in place and must
/// keep it executable: the PassManager re-validates invariants after
/// every pass (analysis::CheckPhysicalPlan in paranoid builds).
class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;

  virtual const char* name() const = 0;
  virtual Status Run(PhysicalPlan& plan, const PassContext& context) = 0;
};

/// Before/after renders of one pass — the EXPLAIN surface for "what did
/// the optimizer do".
struct PassSnapshot {
  std::string pass;
  std::string before;
  std::string after;
};

struct PassManagerOptions {
  /// Record a PassSnapshot per pass (rendering cost; off on the hot
  /// Execute path, on for EXPLAIN and tests).
  bool record_snapshots = false;
  /// Invoked on the plan before the first pass and again after every
  /// pass; any error aborts the pipeline.
  std::function<Status(const PhysicalPlan&)> validate;
};

class PassManager {
 public:
  explicit PassManager(PassManagerOptions options = PassManagerOptions{});

  void AddPass(std::unique_ptr<OptimizerPass> pass);

  /// Runs every pass in registration order. Validation (when configured)
  /// brackets the pipeline: once before the first pass, once after each.
  Status Run(PhysicalPlan& plan, const PassContext& context);

  size_t num_passes() const { return passes_.size(); }
  const std::vector<PassSnapshot>& snapshots() const { return snapshots_; }

 private:
  PassManagerOptions options_;
  std::vector<std::unique_ptr<OptimizerPass>> passes_;
  std::vector<PassSnapshot> snapshots_;
};

/// Splices constant FILTERs out of the modifier tail and into every scan
/// that binds their variable (evaluated right after the scan, below the
/// joins). Variable-vs-variable filters stay in the tail, in order.
std::unique_ptr<OptimizerPass> MakeFilterPushdownPass();

/// Cost-based join reordering. Re-enumerates the join tree over the
/// scan leaves — DPsize over connected subgraphs up to
/// kJoinOrderDpThreshold leaves, greedy operator ordering beyond —
/// producing bushy trees costed with the cluster::CostModel recipe
/// (scan + shuffle + broadcast charges) over stats::CardinalityEstimator
/// row estimates. Keeps the translator's heuristic order whenever the
/// model does not predict a strictly cheaper tree, and annotates every
/// node's estimated_rows on the way out. Runs before join-strategy
/// resolution; leaves strategies and downstream passes untouched.
std::unique_ptr<OptimizerPass> MakeJoinOrderPass();

/// Leaf count above which the join_order pass switches from exhaustive
/// DPsize enumeration to greedy operator ordering.
inline constexpr size_t kJoinOrderDpThreshold = 10;

/// Relative model-cost advantage the enumerated tree must show over the
/// translator's heuristic order before the pass rewrites. Margins below
/// this are estimate noise (constants and cross-star correlations are
/// not priced exactly), where "wins" flip sign at run time as often as
/// not; real improvements clear it by an order of magnitude.
inline constexpr double kJoinOrderRewriteMargin = 0.02;

/// Resolves each join's broadcast/shuffle choice at plan time from the
/// children's planner_bytes — the same numbers HashJoin would use — so
/// EXPLAIN shows the strategy before anything executes.
std::unique_ptr<OptimizerPass> MakeJoinStrategyPass();

/// Inserts zero-cost column prunes below every join input that carries
/// columns nothing downstream reads, shrinking the bytes later shuffles
/// and broadcasts charge.
std::unique_ptr<OptimizerPass> MakeEarlyProjectionPass();

/// Which rewrites run (see the ablation matrix in DESIGN.md §4).
/// All-false reproduces the seed execution path byte for byte.
struct PassOptions {
  bool filter_pushdown = true;
  bool join_order = true;
  bool resolve_join_strategy = true;
  bool early_projection = true;
};

/// Registers the enabled passes in their contract order: pushdown first
/// (filters must settle before the cost model sees leaf selectivities),
/// then cost-based join ordering (the tree shape must be final before
/// strategies bind), then strategy resolution (planner_bytes are fixed
/// from here on), then early projection (prunes never change
/// planner_bytes, so the resolved strategies stay valid).
void AddDefaultPasses(PassManager& manager, const PassOptions& options);

/// An optimized plan plus the per-pass snapshots that produced it.
struct PlannedQuery {
  PhysicalPlan plan;
  std::vector<PassSnapshot> snapshots;
};

}  // namespace prost::plan

#endif  // PROST_PLAN_PASSES_H_
