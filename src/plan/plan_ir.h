#ifndef PROST_PLAN_PLAN_IR_H_
#define PROST_PLAN_PLAN_IR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/join_tree.h"
#include "engine/operators.h"
#include "engine/relation.h"
#include "sparql/algebra.h"

namespace prost::plan {

/// Physical operator kinds. Scans are Join Tree leaves; everything else
/// is a unary/binary operator over child relations.
enum class PlanNodeKind {
  kVpScan,     // Vertical Partitioning table scan
  kPtScan,     // Property Table scan (forward or reverse, per source.kind)
  kHashJoin,   // hash equi-join (broadcast or shuffle)
  kFilter,     // FILTER constraint kept above the joins
  kProject,    // projection (query tail or optimizer-inserted prune)
  kOrderBy,    // driver-side stable sort
  kAggregate,  // COUNT / COUNT DISTINCT collapse
  kDistinct,   // duplicate elimination
  kLimit,      // OFFSET / LIMIT slice
};

const char* PlanNodeKindName(PlanNodeKind kind);

class PlanBuilder;

/// One node of the typed physical plan: a tree (left-deep under the
/// joins) whose shape maps 1:1 to execution spans. Every node carries its
/// output schema, the §3.3 cardinality estimate (scans only) and the
/// planner's size estimate — the same number Relation::PlannerBytes
/// reports at run time, which is what makes plan-time join-strategy
/// resolution exact.
///
/// Construction is builder-only (PlanBuilder computes schemas and size
/// rules in one place); tools/lint.py enforces this outside src/plan/.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  /// Short operator identity, e.g. "PT(?v0: <p1>,<p2>)".
  virtual std::string Label() const = 0;

  PlanNodeKind kind;
  /// Output schema: variable names in the order the executed relation
  /// carries its columns.
  std::vector<std::string> output_columns;
  /// §3.3 cardinality estimate; < 0 = unknown (non-scan nodes).
  double estimated_rows = -1;
  /// What the planner believes the output weighs — equal to the executed
  /// relation's Relation::PlannerBytes. kUnknownPlannerBytes above joins
  /// (Spark 2.1 static planning: join outputs are never broadcast).
  uint64_t planner_bytes = engine::Relation::kUnknownPlannerBytes;
  std::vector<std::unique_ptr<PlanNode>> children;

 protected:
  explicit PlanNode(PlanNodeKind node_kind) : kind(node_kind) {}
};

/// Common shape of the two scan leaves: the Join Tree node they evaluate
/// plus any constant FILTERs the optimizer pushed below the joins.
class ScanNodeBase : public PlanNode {
 public:
  std::string Label() const override { return source.Label(); }

  core::JoinTreeNode source;
  /// Constant FILTERs pushed into this scan (FilterPushdownPass). They
  /// evaluate on the scan's output with the same TermKey semantics as the
  /// modifier tail, and never discount planner_bytes (static planning).
  std::vector<sparql::FilterConstraint> pushed_filters;

 protected:
  ScanNodeBase(PlanNodeKind node_kind, core::JoinTreeNode node)
      : PlanNode(node_kind), source(std::move(node)) {}
};

class VpScanNode final : public ScanNodeBase {
 private:
  friend class PlanBuilder;
  explicit VpScanNode(core::JoinTreeNode node)
      : ScanNodeBase(PlanNodeKind::kVpScan, std::move(node)) {}
};

/// Covers both the subject-keyed and the reverse (object-keyed) Property
/// Table; `source.kind` tells them apart.
class PtScanNode final : public ScanNodeBase {
 private:
  friend class PlanBuilder;
  explicit PtScanNode(core::JoinTreeNode node)
      : ScanNodeBase(PlanNodeKind::kPtScan, std::move(node)) {}
};

class HashJoinNode final : public PlanNode {
 public:
  std::string Label() const override { return label; }

  /// The right child's label — the Join Tree node folded in at this step,
  /// matching the seed executor's per-join span labels.
  std::string label;
  /// Shared columns joined on, in left-child column order.
  std::vector<std::string> join_columns;
  /// Resolved by JoinStrategyPass from the children's planner_bytes.
  /// Unset plans derive the strategy inside HashJoin at run time (the
  /// seed behavior); paranoid builds assert executed == planned.
  std::optional<engine::JoinStrategy> strategy;

 private:
  friend class PlanBuilder;
  explicit HashJoinNode(std::string join_label)
      : PlanNode(PlanNodeKind::kHashJoin), label(std::move(join_label)) {}
};

class FilterNode final : public PlanNode {
 public:
  std::string Label() const override { return "?" + constraint.variable; }

  sparql::FilterConstraint constraint;

 private:
  friend class PlanBuilder;
  explicit FilterNode(sparql::FilterConstraint filter)
      : PlanNode(PlanNodeKind::kFilter), constraint(std::move(filter)) {}
};

class ProjectNode final : public PlanNode {
 public:
  std::string Label() const override;

  /// Kept columns, in output order (== output_columns).
  std::vector<std::string> columns;
  /// True for EarlyProjectionPass prunes: executed as a zero-charge
  /// column drop (engine::PruneColumns) instead of a charged projection.
  bool optimizer_inserted = false;

 private:
  friend class PlanBuilder;
  ProjectNode(std::vector<std::string> kept, bool inserted)
      : PlanNode(PlanNodeKind::kProject),
        columns(std::move(kept)),
        optimizer_inserted(inserted) {}
};

class OrderByNode final : public PlanNode {
 public:
  std::string Label() const override { return ""; }

  std::vector<sparql::OrderKey> keys;

 private:
  friend class PlanBuilder;
  explicit OrderByNode(std::vector<sparql::OrderKey> order_keys)
      : PlanNode(PlanNodeKind::kOrderBy), keys(std::move(order_keys)) {}
};

/// COUNT / COUNT DISTINCT. Always the plan root for count queries: the
/// seed semantics fold OFFSET into the aggregate (offset > 0 empties the
/// single-row result) and ignore ORDER BY / DISTINCT / LIMIT after it.
class AggregateNode final : public PlanNode {
 public:
  std::string Label() const override { return count.alias; }

  sparql::CountAggregate count;
  uint64_t offset = 0;

 private:
  friend class PlanBuilder;
  AggregateNode(sparql::CountAggregate aggregate, uint64_t query_offset)
      : PlanNode(PlanNodeKind::kAggregate),
        count(std::move(aggregate)),
        offset(query_offset) {}
};

class DistinctNode final : public PlanNode {
 public:
  std::string Label() const override { return ""; }

  /// Ordered results dedupe on the driver to preserve the sort; unordered
  /// ones use the engine's distributed shuffle DISTINCT.
  bool order_preserving = false;

 private:
  friend class PlanBuilder;
  explicit DistinctNode(bool preserve_order)
      : PlanNode(PlanNodeKind::kDistinct), order_preserving(preserve_order) {}
};

class LimitNode final : public PlanNode {
 public:
  std::string Label() const override;

  uint64_t offset = 0;
  uint64_t limit = 0;  // 0 = no LIMIT (OFFSET only).

 private:
  friend class PlanBuilder;
  LimitNode(uint64_t query_offset, uint64_t query_limit)
      : PlanNode(PlanNodeKind::kLimit),
        offset(query_offset),
        limit(query_limit) {}
};

/// A complete physical plan. ToString renders the tree with each node's
/// strategy / pushed filters / output schema — the EXPLAIN surface.
struct PhysicalPlan {
  std::unique_ptr<PlanNode> root;

  std::string ToString() const;
};

/// The only way to construct plan nodes: schema and planner-size rules
/// live here, in one place, and the plan checker re-derives them the
/// same way.
class PlanBuilder {
 public:
  /// Leaf over a Join Tree node. `planner_bytes` is the storage-derived
  /// scan size (VpStore/PropertyTable::ScanPlannerBytes) — the value the
  /// executed scan relation will carry.
  static std::unique_ptr<PlanNode> MakeScan(core::JoinTreeNode source,
                                            uint64_t planner_bytes);

  /// Hash equi-join on every shared column. Errors when the children
  /// share none (the Join Tree translator never emits cross products).
  static Result<std::unique_ptr<PlanNode>> MakeHashJoin(
      std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right);

  static std::unique_ptr<PlanNode> MakeFilter(
      std::unique_ptr<PlanNode> child, sparql::FilterConstraint constraint);
  static std::unique_ptr<PlanNode> MakeProject(
      std::unique_ptr<PlanNode> child, std::vector<std::string> columns,
      bool optimizer_inserted);
  static std::unique_ptr<PlanNode> MakeOrderBy(
      std::unique_ptr<PlanNode> child, std::vector<sparql::OrderKey> keys);
  static std::unique_ptr<PlanNode> MakeAggregate(
      std::unique_ptr<PlanNode> child, sparql::CountAggregate count,
      uint64_t offset);
  static std::unique_ptr<PlanNode> MakeDistinct(
      std::unique_ptr<PlanNode> child, bool order_preserving);
  static std::unique_ptr<PlanNode> MakeLimit(std::unique_ptr<PlanNode> child,
                                             uint64_t offset, uint64_t limit);

  /// Recomputes every output schema bottom-up after a structural rewrite
  /// (EarlyProjectionPass shrinks join inputs, so join outputs shrink
  /// too). Join join_columns are re-derived alongside.
  static void RecomputeSchemas(PlanNode& node);

  /// The scan output schema of a Join Tree node: key variable first, then
  /// each pattern's value variable in pattern order, repeats collapsed —
  /// exactly the VpStore::ScanTable / PropertyTable::Scan layout.
  static std::vector<std::string> ScanOutputColumns(
      const core::JoinTreeNode& node);
};

}  // namespace prost::plan

#endif  // PROST_PLAN_PLAN_IR_H_
