#include "plan/planner.h"

#include <utility>

namespace prost::plan {
namespace {

/// Planner-visible scan size for one Join Tree node — the exact
/// Relation::PlannerBytes its executed scan will carry.
Result<uint64_t> NodePlannerBytes(const core::JoinTreeNode& node,
                                  const PlannerInputs& inputs) {
  switch (node.kind) {
    case core::NodeKind::kVerticalPartitioning:
      if (inputs.vp == nullptr) return uint64_t{0};
      return inputs.vp->ScanPlannerBytes(node.patterns[0].predicate);
    case core::NodeKind::kPropertyTable: {
      if (inputs.property_table == nullptr) {
        return Status::Internal("join tree has a PT node but no PT");
      }
      std::vector<core::PropertyTable::ColumnPattern> patterns;
      patterns.reserve(node.patterns.size());
      for (const core::NodePattern& p : node.patterns) {
        patterns.push_back({p.predicate, p.object});
      }
      return inputs.property_table->ScanPlannerBytes(patterns);
    }
    case core::NodeKind::kReversePropertyTable: {
      if (inputs.reverse_property_table == nullptr) {
        return Status::Internal("join tree has an RPT node but no RPT");
      }
      std::vector<core::PropertyTable::ColumnPattern> patterns;
      patterns.reserve(node.patterns.size());
      for (const core::NodePattern& p : node.patterns) {
        patterns.push_back({p.predicate, p.subject});
      }
      return inputs.reverse_property_table->ScanPlannerBytes(patterns);
    }
  }
  return Status::Internal("unknown join tree node kind");
}

}  // namespace

Result<PhysicalPlan> BuildPlan(const core::JoinTree& tree,
                               const sparql::Query& query,
                               const PlannerInputs& inputs) {
  if (tree.nodes.empty()) {
    return Status::InvalidArgument("empty join tree");
  }

  std::unique_ptr<PlanNode> root;
  for (const core::JoinTreeNode& node : tree.nodes) {
    PROST_ASSIGN_OR_RETURN(uint64_t planner_bytes,
                           NodePlannerBytes(node, inputs));
    std::unique_ptr<PlanNode> scan =
        PlanBuilder::MakeScan(node, planner_bytes);
    if (root == nullptr) {
      root = std::move(scan);
    } else {
      PROST_ASSIGN_OR_RETURN(
          root, PlanBuilder::MakeHashJoin(std::move(root), std::move(scan)));
    }
  }

  // Modifier tail, in the order ApplyFiltersAndModifiers evaluates it.
  for (const sparql::FilterConstraint& filter : query.filters) {
    root = PlanBuilder::MakeFilter(std::move(root), filter);
  }
  if (query.count.has_value()) {
    // COUNT is the root: the seed folds OFFSET into the aggregate and
    // ignores ORDER BY / DISTINCT / LIMIT after it.
    root = PlanBuilder::MakeAggregate(std::move(root), *query.count,
                                      query.offset);
    return PhysicalPlan{std::move(root)};
  }
  if (!query.order_by.empty()) {
    root = PlanBuilder::MakeOrderBy(std::move(root), query.order_by);
  }
  root = PlanBuilder::MakeProject(std::move(root),
                                  query.EffectiveProjection(),
                                  /*optimizer_inserted=*/false);
  if (query.distinct) {
    root = PlanBuilder::MakeDistinct(std::move(root),
                                     /*order_preserving=*/
                                     !query.order_by.empty());
  }
  if (query.offset > 0 || query.limit > 0) {
    root = PlanBuilder::MakeLimit(std::move(root), query.offset, query.limit);
  }
  return PhysicalPlan{std::move(root)};
}

}  // namespace prost::plan
