#ifndef PROST_PLAN_PLANNER_H_
#define PROST_PLAN_PLANNER_H_

#include "common/status.h"
#include "core/join_tree.h"
#include "core/property_table.h"
#include "core/vp_store.h"
#include "plan/plan_ir.h"
#include "sparql/algebra.h"

namespace prost::plan {

/// Storage the plan will execute against. Used only for planner-size
/// estimates (ScanPlannerBytes) at build time — the plan itself carries
/// no storage pointers.
struct PlannerInputs {
  const core::VpStore* vp = nullptr;
  const core::PropertyTable* property_table = nullptr;
  const core::PropertyTable* reverse_property_table = nullptr;
};

/// Lowers a Join Tree plus the query's solution modifiers into the
/// initial physical plan: a left-deep join chain over the tree's scans
/// (nodes[0] first, matching the translator's stats ordering), then the
/// modifier tail in seed evaluation order — FILTERs, then either COUNT
/// (the root, folding OFFSET) or ORDER BY → projection → DISTINCT →
/// OFFSET/LIMIT. The result is unoptimized; run it through a PassManager
/// to resolve join strategies, push filters, and prune columns.
Result<PhysicalPlan> BuildPlan(const core::JoinTree& tree,
                               const sparql::Query& query,
                               const PlannerInputs& inputs);

}  // namespace prost::plan

#endif  // PROST_PLAN_PLANNER_H_
