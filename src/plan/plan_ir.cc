#include "plan/plan_ir.h"

#include <utility>

#include "common/str_util.h"

namespace prost::plan {
namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& existing : names) {
    if (existing == name) return true;
  }
  return false;
}

std::string ColumnList(const std::vector<std::string>& names) {
  return "(" + StrJoin(names, ",") + ")";
}

std::string NodeLine(const PlanNode& node) {
  std::string out = PlanNodeKindName(node.kind);
  switch (node.kind) {
    case PlanNodeKind::kVpScan:
    case PlanNodeKind::kPtScan: {
      const auto& scan = static_cast<const ScanNodeBase&>(node);
      out += " " + scan.Label();
      out += StrFormat("  est=%.0f", scan.estimated_rows);
      if (scan.planner_bytes != engine::Relation::kUnknownPlannerBytes) {
        out += StrFormat("  bytes=%llu",
                         static_cast<unsigned long long>(scan.planner_bytes));
      }
      for (const sparql::FilterConstraint& filter : scan.pushed_filters) {
        out += "  pushed[" + filter.ToString() + "]";
      }
      break;
    }
    case PlanNodeKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinNode&>(node);
      out += join.strategy.has_value()
                 ? (*join.strategy == engine::JoinStrategy::kBroadcast
                        ? "[broadcast]"
                        : "[shuffle]")
                 : "[unresolved]";
      out += " " + join.Label() + " on " + ColumnList(join.join_columns);
      break;
    }
    case PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      out += " " + filter.constraint.ToString();
      break;
    }
    case PlanNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      if (project.optimizer_inserted) out += "[pruned]";
      break;
    }
    case PlanNodeKind::kOrderBy: {
      const auto& order = static_cast<const OrderByNode&>(node);
      std::vector<std::string> keys;
      keys.reserve(order.keys.size());
      for (const sparql::OrderKey& key : order.keys) {
        keys.push_back("?" + key.variable + (key.descending ? " DESC" : ""));
      }
      out += " " + StrJoin(keys, ", ");
      break;
    }
    case PlanNodeKind::kAggregate: {
      const auto& aggregate = static_cast<const AggregateNode&>(node);
      out += aggregate.count.distinct ? " COUNT(DISTINCT " : " COUNT(";
      out += aggregate.count.variable.empty()
                 ? "*"
                 : "?" + aggregate.count.variable;
      out += ") AS ?" + aggregate.count.alias;
      if (aggregate.offset > 0) {
        out += StrFormat("  offset=%llu",
                         static_cast<unsigned long long>(aggregate.offset));
      }
      break;
    }
    case PlanNodeKind::kDistinct: {
      const auto& distinct = static_cast<const DistinctNode&>(node);
      if (distinct.order_preserving) out += "[order-preserving]";
      break;
    }
    case PlanNodeKind::kLimit: {
      out += " " + node.Label();
      break;
    }
  }
  // Scans always render their translator estimate above; every other node
  // gains an estimate only once the join_order pass has annotated it.
  if (node.kind != PlanNodeKind::kVpScan && node.kind != PlanNodeKind::kPtScan &&
      node.estimated_rows >= 0) {
    out += StrFormat("  est=%.1f", node.estimated_rows);
  }
  out += "  cols=" + ColumnList(node.output_columns);
  return out;
}

void RenderTree(const PlanNode& node, const std::string& line_prefix,
                const std::string& child_prefix, std::string& out) {
  out += line_prefix + NodeLine(node) + "\n";
  for (size_t i = 0; i < node.children.size(); ++i) {
    const bool last = i + 1 == node.children.size();
    RenderTree(*node.children[i], child_prefix + (last ? "`- " : "|- "),
               child_prefix + (last ? "   " : "|  "), out);
  }
}

}  // namespace

const char* PlanNodeKindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kVpScan:
      return "VpScan";
    case PlanNodeKind::kPtScan:
      return "PtScan";
    case PlanNodeKind::kHashJoin:
      return "HashJoin";
    case PlanNodeKind::kFilter:
      return "Filter";
    case PlanNodeKind::kProject:
      return "Project";
    case PlanNodeKind::kOrderBy:
      return "OrderBy";
    case PlanNodeKind::kAggregate:
      return "Aggregate";
    case PlanNodeKind::kDistinct:
      return "Distinct";
    case PlanNodeKind::kLimit:
      return "Limit";
  }
  return "unknown";
}

std::string ProjectNode::Label() const { return StrJoin(columns, ","); }

std::string LimitNode::Label() const {
  std::string out;
  if (offset > 0) {
    out += StrFormat("offset=%llu", static_cast<unsigned long long>(offset));
  }
  if (limit > 0) {
    if (!out.empty()) out += " ";
    out += StrFormat("limit=%llu", static_cast<unsigned long long>(limit));
  }
  return out;
}

std::string PhysicalPlan::ToString() const {
  std::string out;
  if (root != nullptr) RenderTree(*root, "", "", out);
  return out;
}

std::vector<std::string> PlanBuilder::ScanOutputColumns(
    const core::JoinTreeNode& node) {
  std::vector<std::string> names;
  auto add = [&names](const std::string& name) {
    if (!Contains(names, name)) names.push_back(name);
  };
  if (node.patterns.empty()) return names;
  const bool reverse = node.kind == core::NodeKind::kReversePropertyTable;
  const core::PatternTerm& key =
      reverse ? node.patterns[0].object : node.patterns[0].subject;
  if (key.is_variable) add(key.name);
  for (const core::NodePattern& pattern : node.patterns) {
    const core::PatternTerm& value =
        reverse ? pattern.subject : pattern.object;
    if (value.is_variable) add(value.name);
  }
  return names;
}

std::unique_ptr<PlanNode> PlanBuilder::MakeScan(core::JoinTreeNode source,
                                                uint64_t planner_bytes) {
  std::unique_ptr<ScanNodeBase> node;
  if (source.kind == core::NodeKind::kVerticalPartitioning) {
    node = std::unique_ptr<ScanNodeBase>(new VpScanNode(std::move(source)));
  } else {
    node = std::unique_ptr<ScanNodeBase>(new PtScanNode(std::move(source)));
  }
  node->output_columns = ScanOutputColumns(node->source);
  node->estimated_rows = node->source.estimated_cardinality;
  node->planner_bytes = planner_bytes;
  return node;
}

Result<std::unique_ptr<PlanNode>> PlanBuilder::MakeHashJoin(
    std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right) {
  std::vector<std::string> shared;
  for (const std::string& name : left->output_columns) {
    if (Contains(right->output_columns, name)) shared.push_back(name);
  }
  if (shared.empty()) {
    return Status::InvalidArgument(
        "join requires at least one shared column; got [" +
        StrJoin(left->output_columns, ",") + "] vs [" +
        StrJoin(right->output_columns, ",") + "]");
  }
  auto node = std::unique_ptr<HashJoinNode>(new HashJoinNode(right->Label()));
  node->join_columns = std::move(shared);
  node->output_columns = left->output_columns;
  for (const std::string& name : right->output_columns) {
    if (!Contains(node->output_columns, name)) {
      node->output_columns.push_back(name);
    }
  }
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return std::unique_ptr<PlanNode>(std::move(node));
}

std::unique_ptr<PlanNode> PlanBuilder::MakeFilter(
    std::unique_ptr<PlanNode> child, sparql::FilterConstraint constraint) {
  auto node =
      std::unique_ptr<FilterNode>(new FilterNode(std::move(constraint)));
  node->output_columns = child->output_columns;
  node->planner_bytes = child->planner_bytes;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanBuilder::MakeProject(
    std::unique_ptr<PlanNode> child, std::vector<std::string> columns,
    bool optimizer_inserted) {
  auto node = std::unique_ptr<ProjectNode>(
      new ProjectNode(std::move(columns), optimizer_inserted));
  node->output_columns = node->columns;
  node->planner_bytes = child->planner_bytes;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanBuilder::MakeOrderBy(
    std::unique_ptr<PlanNode> child, std::vector<sparql::OrderKey> keys) {
  auto node = std::unique_ptr<OrderByNode>(new OrderByNode(std::move(keys)));
  node->output_columns = child->output_columns;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanBuilder::MakeAggregate(
    std::unique_ptr<PlanNode> child, sparql::CountAggregate count,
    uint64_t offset) {
  auto node = std::unique_ptr<AggregateNode>(
      new AggregateNode(std::move(count), offset));
  node->output_columns = {node->count.alias};
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanBuilder::MakeDistinct(
    std::unique_ptr<PlanNode> child, bool order_preserving) {
  auto node =
      std::unique_ptr<DistinctNode>(new DistinctNode(order_preserving));
  node->output_columns = child->output_columns;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanBuilder::MakeLimit(
    std::unique_ptr<PlanNode> child, uint64_t offset, uint64_t limit) {
  auto node = std::unique_ptr<LimitNode>(new LimitNode(offset, limit));
  node->output_columns = child->output_columns;
  node->children.push_back(std::move(child));
  return node;
}

void PlanBuilder::RecomputeSchemas(PlanNode& node) {
  for (const std::unique_ptr<PlanNode>& child : node.children) {
    RecomputeSchemas(*child);
  }
  switch (node.kind) {
    case PlanNodeKind::kVpScan:
    case PlanNodeKind::kPtScan: {
      auto& scan = static_cast<ScanNodeBase&>(node);
      scan.output_columns = ScanOutputColumns(scan.source);
      break;
    }
    case PlanNodeKind::kHashJoin: {
      auto& join = static_cast<HashJoinNode&>(node);
      const PlanNode& left = *join.children[0];
      const PlanNode& right = *join.children[1];
      join.join_columns.clear();
      for (const std::string& name : left.output_columns) {
        if (Contains(right.output_columns, name)) {
          join.join_columns.push_back(name);
        }
      }
      join.output_columns = left.output_columns;
      for (const std::string& name : right.output_columns) {
        if (!Contains(join.output_columns, name)) {
          join.output_columns.push_back(name);
        }
      }
      break;
    }
    case PlanNodeKind::kProject: {
      auto& project = static_cast<ProjectNode&>(node);
      project.output_columns = project.columns;
      break;
    }
    case PlanNodeKind::kAggregate: {
      auto& aggregate = static_cast<AggregateNode&>(node);
      aggregate.output_columns = {aggregate.count.alias};
      break;
    }
    case PlanNodeKind::kFilter:
    case PlanNodeKind::kOrderBy:
    case PlanNodeKind::kDistinct:
    case PlanNodeKind::kLimit:
      node.output_columns = node.children[0]->output_columns;
      break;
  }
}

}  // namespace prost::plan
