#include "plan/passes.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "stats/cardinality_estimator.h"

namespace prost::plan {
namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& existing : names) {
    if (existing == name) return true;
  }
  return false;
}

void CollectScans(PlanNode& node, std::vector<ScanNodeBase*>& scans) {
  if (node.kind == PlanNodeKind::kVpScan ||
      node.kind == PlanNodeKind::kPtScan) {
    scans.push_back(static_cast<ScanNodeBase*>(&node));
    return;
  }
  for (const std::unique_ptr<PlanNode>& child : node.children) {
    CollectScans(*child, scans);
  }
}

/// Constant-filter pushdown. FILTERs sit in the unary tail above the top
/// join; each constant one whose variable some scan binds is appended to
/// every such scan's pushed_filters and spliced out of the tail.
/// Filtering before the join is equivalent for per-row predicates, and
/// surviving rows keep their relative order, so results stay
/// bit-identical.
class FilterPushdownPass final : public OptimizerPass {
 public:
  const char* name() const override { return "filter_pushdown"; }

  Status Run(PhysicalPlan& plan, const PassContext&) override {
    std::vector<ScanNodeBase*> scans;
    CollectScans(*plan.root, scans);
    std::unique_ptr<PlanNode>* link = &plan.root;
    while (*link != nullptr) {
      PlanNode& node = **link;
      if (node.children.size() != 1) break;  // Reached the joins/scan.
      if (node.kind == PlanNodeKind::kFilter) {
        auto& filter = static_cast<FilterNode&>(node);
        if (!filter.constraint.rhs_is_variable) {
          bool pushed = false;
          for (ScanNodeBase* scan : scans) {
            if (Contains(scan->output_columns, filter.constraint.variable)) {
              scan->pushed_filters.push_back(filter.constraint);
              pushed = true;
            }
          }
          if (pushed) {
            std::unique_ptr<PlanNode> child = std::move(node.children[0]);
            *link = std::move(child);
            continue;  // Re-examine the spliced-in child.
          }
        }
      }
      link = &node.children[0];
    }
    return Status::OK();
  }
};

/// Estimated selectivity of a non-equality pushed filter (range and
/// inequality comparisons), the classic System R default.
constexpr double kRangeFilterSelectivity = 1.0 / 3.0;

/// Cost-based join ordering (see DESIGN.md §14). The translator's §3.3
/// heuristic sorts scans by cardinality estimate; this pass re-enumerates
/// the join tree with real statistics instead: DPsize over connected
/// subgraphs (greedy operator ordering above kJoinOrderDpThreshold
/// leaves), bushy trees allowed, every candidate priced with the
/// cluster::CostModel charge recipe the executor will actually apply
/// (scan / broadcast / shuffle / per-row CPU). The heuristic order is
/// itself costed as a candidate, and the pass only rewrites when the
/// model predicts a strictly cheaper tree — so it can refine the paper's
/// order but never regress it under its own model.
class JoinOrderPass final : public OptimizerPass {
 public:
  const char* name() const override { return "join_order"; }

  Status Run(PhysicalPlan& plan, const PassContext& context) override {
    if (context.cluster == nullptr) {
      return Status::Internal("join order pass needs a cluster config");
    }
    // No statistics, no cost model: keep the translator's order.
    if (context.estimator == nullptr) return Status::OK();

    // Walk the unary tail above the join segment, collecting the columns
    // it still reads — the live set at the top of the joins, which is
    // what early projection will let flow through the exchanges.
    std::unique_ptr<PlanNode>* link = &plan.root;
    std::set<std::string> required(plan.root->output_columns.begin(),
                                   plan.root->output_columns.end());
    while ((*link)->children.size() == 1) {
      CollectTailRequirements(**link, required);
      link = &(*link)->children[0];
    }

    Enumeration e;
    e.context = &context;
    e.required = &required;

    // Gather the join leaves. Anything but hash joins over scans means
    // some other component already reshaped this subtree; leave it be.
    std::vector<ScanNodeBase*> scans;
    if (!CollectJoinLeaves(**link, scans) || scans.empty()) {
      return Status::OK();
    }
    const size_t n = scans.size();
    for (size_t i = 0; i < n; ++i) {
      e.leaves.push_back(EstimateLeaf(*scans[i], *context.estimator));
      e.leaves.back().mask = 1u << i;
      for (const auto& [var, d] : e.leaves.back().distinct) {
        (void)d;
        e.var_leaves[var] |= 1u << i;
      }
      e.leaf_index[scans[i]] = i;
    }
    for (auto& leaf : e.leaves) {
      for (const auto& [var, d] : leaf.distinct) {
        (void)d;
        leaf.adjacency |= e.var_leaves[var];
      }
      leaf.adjacency &= ~leaf.mask;
    }

    if (n >= 2 && n <= (8 * sizeof(uint32_t))) {
      // Price the translator's order (the left-deep fold over the leaves
      // in their current left-to-right sequence) as the baseline.
      EnumeratedPlan heuristic = e.leaves[0];
      bool heuristic_ok = true;
      for (size_t i = 1; i < n && heuristic_ok; ++i) {
        EnumeratedPlan next;
        if (!e.Join(heuristic, e.leaves[i], &next)) heuristic_ok = false;
        heuristic = next;
      }

      std::vector<std::pair<uint32_t, uint32_t>> split;
      EnumeratedPlan best;
      const bool found = n <= kJoinOrderDpThreshold
                             ? EnumerateDp(e, &best, &split)
                             : EnumerateGreedy(e, &best, &split);
      if (found && heuristic_ok &&
          best.cost < heuristic.cost * (1.0 - kJoinOrderRewriteMargin)) {
        // Detach the leaves and rebuild the tree the enumerator chose.
        std::vector<std::unique_ptr<PlanNode>> leaf_nodes =
            DetachJoinLeaves(std::move(*link));
        auto rebuilt =
            BuildTree(split, leaf_nodes, (1u << n) - 1, n, split.size() - 1);
        if (!rebuilt.ok()) return rebuilt.status();
        *link = std::move(rebuilt.value());
        PlanBuilder::RecomputeSchemas(*plan.root);
      }
    }

    // Annotate estimated_rows over the final shape: refined scan
    // estimates, independence-estimated joins, then the unary tail.
    AnnotateSegment(**link, e);
    AnnotateTail(*plan.root);
    return Status::OK();
  }

 private:
  /// One join input during enumeration: modeled cost of everything below
  /// it, estimated output rows, per-column distinct-value estimates, and
  /// the planner bytes HashJoin will use to pick broadcast vs shuffle
  /// (scans keep their storage bytes; join outputs are unknown, exactly
  /// as at run time).
  struct EnumeratedPlan {
    double cost = 0.0;
    double rows = 0.0;
    uint64_t planner_bytes = engine::Relation::kUnknownPlannerBytes;
    uint32_t mask = 0;       // Leaves covered.
    uint32_t adjacency = 0;  // Leaves sharing a variable (leaf-only).
    std::map<std::string, double> distinct;
    /// Worst-case output rows, from per-predicate max-fanout caps (and
    /// characteristic sets where they apply). `rows` is the expectation
    /// under independence; skewed joins land anywhere between the two,
    /// so exchanges are priced at their geometric mean — see CostRows.
    double rows_upper = 0.0;
    /// Per-variable cap: no single value of the variable can occur on
    /// more rows than this. This is what lets a join bound its fan-out.
    std::map<std::string, double> max_fanout;
    /// Non-empty when this plan is a pure subject star: every covered
    /// scan is keyed by this subject variable and joined only on it.
    /// Characteristic sets then price the star merge exactly instead of
    /// by independence — `star_predicates` are the star's columns and
    /// `star_selectivity` the fraction the leaves' constants and filters
    /// keep of the raw star.
    std::string star_key;
    std::vector<rdf::TermId> star_predicates;
    double star_selectivity = 1.0;
  };

  struct Enumeration {
    const PassContext* context = nullptr;
    const std::set<std::string>* required = nullptr;
    std::vector<EnumeratedPlan> leaves;
    std::map<std::string, uint32_t> var_leaves;
    std::map<const PlanNode*, size_t> leaf_index;

    /// Per-value row cap of `var` in `p` (infinite when untracked).
    static double FanoutOf(const EnumeratedPlan& p, const std::string& var) {
      const auto it = p.max_fanout.find(var);
      return it == p.max_fanout.end()
                 ? std::numeric_limits<double>::infinity()
                 : it->second;
    }

    /// True when `var` must flow out of the side covering `side_mask`:
    /// either the tail reads it or a leaf outside the side binds it.
    bool Live(const std::string& var, uint32_t side_mask) const {
      if (required->count(var) != 0) return true;
      const auto it = var_leaves.find(var);
      return it != var_leaves.end() && (it->second & ~side_mask) != 0;
    }

    /// Row count an exchange of `p` is priced at: the geometric mean of
    /// the independence estimate and the fan-out upper bound. For exact
    /// star intermediates the two coincide and this is just the truth;
    /// for correlation-prone joins (the estimate trusts independence,
    /// the bound trusts nothing) the hedge keeps the model from calling
    /// a potentially huge shuffle cheap.
    static double CostRows(const EnumeratedPlan& p) {
      const double upper = std::max(p.rows_upper, p.rows);
      if (!std::isfinite(upper)) return p.rows;
      return std::sqrt(p.rows * upper);
    }

    /// Bytes of `p` that an exchange must move, counting only live
    /// columns (early projection prunes the rest before bytes travel).
    double LiveBytes(const EnumeratedPlan& p) const {
      size_t columns = 0;
      for (const auto& [var, d] : p.distinct) {
        (void)d;
        if (Live(var, p.mask)) ++columns;
      }
      columns = std::max<size_t>(columns, 1);
      return CostRows(p) * static_cast<double>(columns) *
             context->cluster->bytes_per_value;
    }

    /// Models joining `l` and `r` with the CostModel charge recipe.
    /// Returns false when the sides share no variable (a cross join the
    /// enumerator must not take).
    bool Join(const EnumeratedPlan& l, const EnumeratedPlan& r,
              EnumeratedPlan* out) const {
      const cluster::ClusterConfig& cc = *context->cluster;
      const double workers = std::max<uint32_t>(cc.num_workers, 1);

      double rows = l.rows * r.rows;
      bool shared = false;
      bool only_star_key = true;
      // Max matches any one row finds on the other side: the tightest
      // per-value cap among the shared variables.
      double l_match = std::numeric_limits<double>::infinity();
      double r_match = std::numeric_limits<double>::infinity();
      for (const auto& [var, dl] : l.distinct) {
        const auto it = r.distinct.find(var);
        if (it == r.distinct.end()) continue;
        shared = true;
        if (var != l.star_key) only_star_key = false;
        rows /= std::max(std::max(dl, it->second), 1.0);
        l_match = std::min(l_match, FanoutOf(r, var));
        r_match = std::min(r_match, FanoutOf(l, var));
      }
      if (!shared) return false;
      double rows_upper =
          std::min(l.rows_upper * r.rows_upper,
                   std::min(l.rows_upper * l_match, r.rows_upper * r_match));
      // The bound is a hard cap: an independence estimate above it is
      // provably too high.
      if (std::isfinite(rows_upper)) rows = std::min(rows, rows_upper);
      rows = std::max(rows, stats::kMinEstimatedRows);

      // Two halves of one subject star, meeting only on their shared
      // key: characteristic sets price the merged star exactly, so use
      // that instead of the independence product.
      bool star = context->estimator != nullptr && !l.star_key.empty() &&
                  l.star_key == r.star_key && only_star_key;
      std::vector<rdf::TermId> merged_predicates;
      double merged_selectivity = 1.0;
      if (star) {
        merged_predicates = l.star_predicates;
        merged_predicates.insert(merged_predicates.end(),
                                 r.star_predicates.begin(),
                                 r.star_predicates.end());
        std::sort(merged_predicates.begin(), merged_predicates.end());
        merged_predicates.erase(
            std::unique(merged_predicates.begin(), merged_predicates.end()),
            merged_predicates.end());
        const double raw = context->estimator->StarRowsExact(merged_predicates);
        if (raw >= 0.0) {
          merged_selectivity = l.star_selectivity * r.star_selectivity;
          rows = std::max(raw * merged_selectivity, stats::kMinEstimatedRows);
          // The unconstrained star is exact, and constants and filters
          // only shrink it.
          rows_upper = std::min(rows_upper, std::max(raw, rows));
        } else {
          star = false;
        }
      }
      out->rows_upper = std::max(rows_upper, rows);

      out->mask = l.mask | r.mask;
      out->rows = rows;
      out->planner_bytes = engine::Relation::kUnknownPlannerBytes;
      if (star) {
        out->star_key = l.star_key;
        out->star_predicates = std::move(merged_predicates);
        out->star_selectivity = merged_selectivity;
      } else {
        out->star_key.clear();
        out->star_predicates.clear();
        out->star_selectivity = 1.0;
      }
      out->distinct.clear();
      for (const auto& [var, dl] : l.distinct) {
        const auto it = r.distinct.find(var);
        const double d = it == r.distinct.end() ? dl : std::min(dl, it->second);
        out->distinct[var] = std::min(d, std::max(rows, 1.0));
      }
      for (const auto& [var, dr] : r.distinct) {
        if (out->distinct.count(var) != 0) continue;
        out->distinct[var] = std::min(dr, std::max(rows, 1.0));
      }
      // Per-value caps: rows carrying one value of `var` are its side's
      // cap times the matches each such row finds on the other side.
      out->max_fanout.clear();
      for (const auto& [var, fl] : l.max_fanout) {
        double cap = fl * l_match;
        const auto it = r.max_fanout.find(var);
        if (it != r.max_fanout.end()) {
          cap = std::min(cap, it->second * r_match);
        }
        out->max_fanout[var] = std::min(cap, out->rows_upper);
      }
      for (const auto& [var, fr] : r.max_fanout) {
        if (out->max_fanout.count(var) != 0) continue;
        out->max_fanout[var] = std::min(fr * r_match, out->rows_upper);
      }
      if (star) {
        // The surviving key values are exactly the subjects carrying
        // every merged predicate (scaled by the constants' selectivity).
        const double subjects =
            context->estimator->StarSubjectsExact(out->star_predicates);
        const auto it = out->distinct.find(out->star_key);
        if (subjects >= 0.0 && it != out->distinct.end()) {
          it->second = std::min(
              it->second, std::max(subjects * merged_selectivity,
                                   stats::kMinEstimatedRows));
        }
        // A star merge untouched by constants or filters is priced
        // *exactly* by the characteristic sets, so its output size is a
        // fact, not a guess: publish it as the planner size, letting
        // joins above broadcast a provably small intermediate (the
        // heuristic plan leaves it unknown and always shuffles).
        if (merged_selectivity >= 1.0 - 1e-9) {
          out->planner_bytes = static_cast<uint64_t>(LiveBytes(*out));
        }
      }

      // The strategy decision the join_strategy pass (and the engine)
      // will take on these planner bytes.
      const engine::JoinStrategy strategy = engine::ResolveJoinStrategy(
          l.planner_bytes, r.planner_bytes, context->join, cc);
      const double l_bytes = LiveBytes(l);
      const double r_bytes = LiveBytes(r);
      double increment = 0.0;
      if (strategy == engine::JoinStrategy::kBroadcast) {
        // The smaller planner side ships to every worker and each worker
        // builds its table; probe + emit spread across the cluster.
        const bool l_small = l.planner_bytes <= r.planner_bytes;
        const double small_bytes = l_small ? l_bytes : r_bytes;
        const double small_rows = l_small ? l.rows : r.rows;
        const double big_rows = l_small ? r.rows : l.rows;
        increment = small_bytes / cc.network_bytes_per_sec +
                    small_rows / cc.cpu_rows_per_sec +
                    (big_rows + rows) / (cc.cpu_rows_per_sec * workers);
      } else {
        // A shuffle join closes the stage and repartitions both sides.
        increment = cc.stage_overhead_sec + 2.0 * cc.shuffle_latency_sec +
                    (l_bytes + r_bytes) / (cc.network_bytes_per_sec * workers) +
                    (l.rows + r.rows + rows) / (cc.cpu_rows_per_sec * workers);
      }
      out->cost = l.cost + r.cost + increment;
      return true;
    }
  };

  /// Adds the columns one unary tail node reads to `required`.
  static void CollectTailRequirements(const PlanNode& node,
                                      std::set<std::string>& required) {
    switch (node.kind) {
      case PlanNodeKind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(node);
        required.insert(filter.constraint.variable);
        if (filter.constraint.rhs_is_variable) {
          required.insert(filter.constraint.rhs_variable);
        }
        break;
      }
      case PlanNodeKind::kProject: {
        const auto& project = static_cast<const ProjectNode&>(node);
        required.insert(project.columns.begin(), project.columns.end());
        break;
      }
      case PlanNodeKind::kOrderBy: {
        const auto& order = static_cast<const OrderByNode&>(node);
        for (const sparql::OrderKey& key : order.keys) {
          required.insert(key.variable);
        }
        break;
      }
      case PlanNodeKind::kAggregate: {
        const auto& aggregate = static_cast<const AggregateNode&>(node);
        if (aggregate.count.variable.empty()) {
          // COUNT(*) counts rows: every child column is live.
          required.insert(node.children[0]->output_columns.begin(),
                          node.children[0]->output_columns.end());
        } else {
          required.insert(aggregate.count.variable);
        }
        break;
      }
      case PlanNodeKind::kDistinct:
        // DISTINCT compares whole rows.
        required.insert(node.children[0]->output_columns.begin(),
                        node.children[0]->output_columns.end());
        break;
      default:
        break;
    }
  }

  /// Collects the scan leaves of the join segment in left-to-right
  /// order. Returns false when the segment is not hash joins over scans.
  static bool CollectJoinLeaves(PlanNode& node,
                                std::vector<ScanNodeBase*>& scans) {
    if (node.kind == PlanNodeKind::kVpScan ||
        node.kind == PlanNodeKind::kPtScan) {
      scans.push_back(static_cast<ScanNodeBase*>(&node));
      return true;
    }
    if (node.kind != PlanNodeKind::kHashJoin) return false;
    for (const std::unique_ptr<PlanNode>& child : node.children) {
      if (!CollectJoinLeaves(*child, scans)) return false;
    }
    return true;
  }

  /// Moves the scan leaves out of `segment` (left-to-right), discarding
  /// the join shells around them.
  static std::vector<std::unique_ptr<PlanNode>> DetachJoinLeaves(
      std::unique_ptr<PlanNode> segment) {
    std::vector<std::unique_ptr<PlanNode>> leaves;
    if (segment->kind == PlanNodeKind::kHashJoin) {
      for (std::unique_ptr<PlanNode>& child : segment->children) {
        auto sub = DetachJoinLeaves(std::move(child));
        for (auto& leaf : sub) leaves.push_back(std::move(leaf));
      }
    } else {
      leaves.push_back(std::move(segment));
    }
    return leaves;
  }

  /// Converts a scan's source node into the estimator's descriptor.
  static stats::StarDescriptor Describe(const core::JoinTreeNode& source) {
    stats::StarDescriptor desc;
    desc.key_is_object = source.kind == core::NodeKind::kReversePropertyTable;
    desc.patterns.reserve(source.patterns.size());
    for (const core::NodePattern& p : source.patterns) {
      stats::PatternDescriptor pd;
      pd.predicate = p.predicate;
      pd.subject_is_constant = !p.subject.is_variable;
      pd.object_is_constant = !p.object.is_variable;
      desc.patterns.push_back(pd);
    }
    return desc;
  }

  /// Takes the smaller of an existing and a new distinct estimate (a
  /// variable bound twice in one scan is an implicit self-join).
  static void MergeDistinct(std::map<std::string, double>& distinct,
                            const std::string& var, double value) {
    const auto it = distinct.find(var);
    if (it == distinct.end()) {
      distinct[var] = value;
    } else {
      it->second = std::min(it->second, value);
    }
  }

  /// Estimates one scan leaf: output rows, per-column distinct values,
  /// and the thinning effect of its pushed constant filters.
  static EnumeratedPlan EstimateLeaf(
      const ScanNodeBase& scan, const stats::CardinalityEstimator& est) {
    const stats::StarDescriptor desc = Describe(scan.source);
    EnumeratedPlan out;
    out.rows = est.EstimateScanRows(desc);
    out.planner_bytes = scan.planner_bytes;
    for (size_t i = 0; i < scan.source.patterns.size(); ++i) {
      const core::NodePattern& p = scan.source.patterns[i];
      const core::PatternTerm& key = desc.key_is_object ? p.object : p.subject;
      const core::PatternTerm& value =
          desc.key_is_object ? p.subject : p.object;
      if (key.is_variable) {
        MergeDistinct(out.distinct, key.name, est.EstimateKeyDistinct(desc));
      }
      if (value.is_variable) {
        MergeDistinct(out.distinct, value.name,
                      est.EstimateValueDistinct(desc, i, out.rows));
      }
    }
    for (const sparql::FilterConstraint& f : scan.pushed_filters) {
      const auto it = out.distinct.find(f.variable);
      const double d = it == out.distinct.end() ? 1.0 : it->second;
      double selectivity = 1.0;
      switch (f.op) {
        case sparql::CompareOp::kEq:
          selectivity = 1.0 / std::max(d, 1.0);
          if (it != out.distinct.end()) it->second = 1.0;
          break;
        case sparql::CompareOp::kNe:
          selectivity = d <= 1.0 ? 1.0 : 1.0 - 1.0 / d;
          break;
        default:
          selectivity = kRangeFilterSelectivity;
          if (it != out.distinct.end()) {
            it->second = std::max(it->second * selectivity, 1.0);
          }
          break;
      }
      out.rows = std::max(out.rows * selectivity, stats::kMinEstimatedRows);
    }
    for (auto& [var, dv] : out.distinct) {
      (void)var;
      dv = std::min(dv, std::max(out.rows, 1.0));
    }
    // Worst-case size: per-pattern max-fanout caps compose into a bound
    // no skew can exceed — each extra pattern multiplies the rows one
    // key value contributes by at most its key-side fanout.
    const double inf = std::numeric_limits<double>::infinity();
    const size_t np = desc.patterns.size();
    std::vector<double> f_key(np, inf);
    std::vector<double> f_val(np, inf);
    std::vector<double> tc(np, inf);
    for (size_t i = 0; i < np; ++i) {
      const rdf::PredicateStats* ps = est.Lookup(desc.patterns[i].predicate);
      if (ps == nullptr) continue;
      const double fs = static_cast<double>(
          std::max<uint64_t>(ps->max_subject_fanout, 1));
      const double fo = static_cast<double>(
          std::max<uint64_t>(ps->max_object_fanout, 1));
      f_key[i] = desc.key_is_object ? fo : fs;
      f_val[i] = desc.key_is_object ? fs : fo;
      tc[i] = static_cast<double>(ps->triple_count);
    }
    out.rows_upper = inf;
    for (size_t i = 0; i < np; ++i) {
      const stats::PatternDescriptor& pd = desc.patterns[i];
      const bool key_const =
          desc.key_is_object ? pd.object_is_constant : pd.subject_is_constant;
      const bool val_const =
          desc.key_is_object ? pd.subject_is_constant : pd.object_is_constant;
      double bound = tc[i];
      if (key_const && val_const) {
        bound = 1.0;  // Deduplicated graph: one row per (s, o) pair.
      } else if (key_const) {
        bound = f_key[i];
      } else if (val_const) {
        bound = f_val[i];
      }
      for (size_t j = 0; j < np; ++j) {
        if (j != i) bound *= f_key[j];
      }
      out.rows_upper = std::min(out.rows_upper, bound);
    }
    for (size_t i = 0; i < np; ++i) {
      const core::NodePattern& p = scan.source.patterns[i];
      const core::PatternTerm& key = desc.key_is_object ? p.object : p.subject;
      const core::PatternTerm& value =
          desc.key_is_object ? p.subject : p.object;
      if (key.is_variable) {
        double cap = 1.0;
        for (size_t j = 0; j < np; ++j) cap *= f_key[j];
        MergeDistinct(out.max_fanout, key.name, cap);
      }
      if (value.is_variable) {
        double cap = f_val[i];
        for (size_t j = 0; j < np; ++j) {
          if (j != i) cap *= f_key[j];
        }
        MergeDistinct(out.max_fanout, value.name, cap);
      }
    }
    if (std::isfinite(out.rows_upper)) {
      out.rows = std::min(out.rows,
                          std::max(out.rows_upper, stats::kMinEstimatedRows));
    }
    // A subject-keyed scan whose patterns all hang off one subject
    // variable is a star fragment; remember its columns so later joins
    // on that key can be priced exactly from the characteristic sets.
    if (!desc.key_is_object && !scan.source.patterns.empty() &&
        scan.source.patterns[0].subject.is_variable) {
      const std::string& key = scan.source.patterns[0].subject.name;
      bool pure = true;
      std::vector<rdf::TermId> predicates;
      predicates.reserve(scan.source.patterns.size());
      for (const core::NodePattern& p : scan.source.patterns) {
        if (!p.subject.is_variable || p.subject.name != key) {
          pure = false;
          break;
        }
        predicates.push_back(p.predicate);
      }
      if (pure) {
        std::sort(predicates.begin(), predicates.end());
        predicates.erase(std::unique(predicates.begin(), predicates.end()),
                         predicates.end());
        const double raw = est.StarRowsExact(predicates);
        if (raw > 0.0) {
          out.star_key = key;
          out.star_predicates = std::move(predicates);
          out.star_selectivity = out.rows / raw;
          // The unconstrained star count is exact; constants and
          // filters only shrink it.
          out.rows_upper = std::min(out.rows_upper, raw);
        }
      }
    }
    out.rows_upper = std::max(out.rows_upper, out.rows);
    for (auto& [var, f] : out.max_fanout) {
      (void)var;
      f = std::min(f, out.rows_upper);
    }
    return out;
  }

  /// DPsize over connected subgraphs. Fills `best` with the optimum for
  /// the full leaf set and `split` with the winning (left, right) mask
  /// per subset (indexed by mask). Returns false when the join graph is
  /// disconnected.
  static bool EnumerateDp(const Enumeration& e, EnumeratedPlan* best,
                          std::vector<std::pair<uint32_t, uint32_t>>* split) {
    const size_t n = e.leaves.size();
    const uint32_t full = (1u << n) - 1;
    std::vector<EnumeratedPlan> table(full + 1);
    std::vector<char> valid(full + 1, 0);
    split->assign(full + 1, {0, 0});
    for (size_t i = 0; i < n; ++i) {
      table[1u << i] = e.leaves[i];
      valid[1u << i] = 1;
    }
    for (uint32_t mask = 3; mask <= full; ++mask) {
      if (std::popcount(mask) < 2) continue;
      for (uint32_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        const uint32_t other = mask ^ sub;
        if (sub > other) continue;  // Unordered split: visit each once.
        if (valid[sub] == 0 || valid[other] == 0) continue;
        EnumeratedPlan joined;
        if (!e.Join(table[sub], table[other], &joined)) continue;
        if (valid[mask] == 0 || joined.cost < table[mask].cost) {
          table[mask] = joined;
          (*split)[mask] = {sub, other};
          valid[mask] = 1;
        }
      }
    }
    if (valid[full] == 0) return false;
    *best = table[full];
    return true;
  }

  /// Greedy operator ordering for joins too wide for DPsize: repeatedly
  /// merge the connected pair with the cheapest modeled join, recording
  /// each merge as a split entry appended past the leaf masks so
  /// BuildTree can replay it.
  static bool EnumerateGreedy(
      const Enumeration& e, EnumeratedPlan* best,
      std::vector<std::pair<uint32_t, uint32_t>>* split) {
    std::vector<EnumeratedPlan> components = e.leaves;
    std::map<uint32_t, std::pair<uint32_t, uint32_t>> merges;
    while (components.size() > 1) {
      double best_cost = 0.0;
      size_t best_i = 0;
      size_t best_j = 0;
      EnumeratedPlan best_joined;
      bool found = false;
      for (size_t i = 0; i < components.size(); ++i) {
        for (size_t j = i + 1; j < components.size(); ++j) {
          EnumeratedPlan joined;
          if (!e.Join(components[i], components[j], &joined)) continue;
          if (!found || joined.cost < best_cost) {
            found = true;
            best_cost = joined.cost;
            best_i = i;
            best_j = j;
            best_joined = joined;
          }
        }
      }
      if (!found) return false;  // Disconnected join graph.
      merges[best_joined.mask] = {components[best_i].mask,
                                  components[best_j].mask};
      components.erase(components.begin() + best_j);
      components[best_i] = best_joined;
    }
    *best = components[0];
    // Re-encode as a mask-indexed split table compatible with BuildTree.
    const uint32_t full = (1u << e.leaves.size()) - 1;
    split->assign(full + 1, {0, 0});
    for (const auto& [mask, halves] : merges) (*split)[mask] = halves;
    return true;
  }

  /// Rebuilds the physical join tree for `mask` from the split table and
  /// the detached leaves.
  static Result<std::unique_ptr<PlanNode>> BuildTree(
      const std::vector<std::pair<uint32_t, uint32_t>>& split,
      std::vector<std::unique_ptr<PlanNode>>& leaves, uint32_t mask, size_t n,
      size_t depth) {
    (void)n;
    (void)depth;
    if (std::popcount(mask) == 1) {
      const size_t index = static_cast<size_t>(std::countr_zero(mask));
      return std::move(leaves[index]);
    }
    const auto [left_mask, right_mask] = split[mask];
    PROST_ASSIGN_OR_RETURN(auto left,
                           BuildTree(split, leaves, left_mask, n, depth));
    PROST_ASSIGN_OR_RETURN(auto right,
                           BuildTree(split, leaves, right_mask, n, depth));
    return PlanBuilder::MakeHashJoin(std::move(left), std::move(right));
  }

  /// Bottom-up estimate annotation over the final join segment.
  EnumeratedPlan AnnotateSegment(PlanNode& node, const Enumeration& e) {
    if (node.kind != PlanNodeKind::kHashJoin) {
      const auto it = e.leaf_index.find(&node);
      if (it == e.leaf_index.end()) return EnumeratedPlan{};
      node.estimated_rows = e.leaves[it->second].rows;
      return e.leaves[it->second];
    }
    EnumeratedPlan left = AnnotateSegment(*node.children[0], e);
    EnumeratedPlan right = AnnotateSegment(*node.children[1], e);
    EnumeratedPlan joined;
    if (e.Join(left, right, &joined)) {
      node.estimated_rows = joined.rows;
      // Exact star intermediates publish their size so the downstream
      // join_strategy pass (and the engine) can broadcast them; the
      // executor stamps the same value on the run-time relation, keeping
      // the plan-time and run-time strategy derivations in agreement.
      node.planner_bytes = joined.planner_bytes;
      return joined;
    }
    return EnumeratedPlan{};
  }

  /// Propagates estimates up the unary tail above the (already
  /// annotated) join segment. Returns the node's estimate.
  static double AnnotateTail(PlanNode& node) {
    if (node.children.size() != 1) return node.estimated_rows;
    const double child = AnnotateTail(*node.children[0]);
    if (child < 0) return node.estimated_rows;
    double rows = child;
    switch (node.kind) {
      case PlanNodeKind::kFilter:
        // Tail filters are variable-vs-variable (constants were pushed);
        // apply the default comparison selectivity.
        rows = std::max(child * kRangeFilterSelectivity,
                        stats::kMinEstimatedRows);
        break;
      case PlanNodeKind::kAggregate:
        rows = 1.0;
        break;
      case PlanNodeKind::kLimit: {
        const auto& limit = static_cast<const LimitNode&>(node);
        if (limit.limit > 0) {
          rows = std::min(child, static_cast<double>(limit.limit));
        }
        break;
      }
      default:
        break;  // Project / OrderBy / Distinct: pass through (upper bound).
    }
    node.estimated_rows = rows;
    return rows;
  }
};

/// Plan-time join-strategy resolution: the exact decision rule HashJoin
/// applies at run time (engine::ResolveJoinStrategy), evaluated on the
/// plan's planner_bytes. Paranoid builds later assert the executed
/// strategy matches.
class JoinStrategyPass final : public OptimizerPass {
 public:
  const char* name() const override { return "join_strategy"; }

  Status Run(PhysicalPlan& plan, const PassContext& context) override {
    if (context.cluster == nullptr) {
      return Status::Internal("join strategy pass needs a cluster config");
    }
    Resolve(*plan.root, context);
    return Status::OK();
  }

 private:
  void Resolve(PlanNode& node, const PassContext& context) {
    for (const std::unique_ptr<PlanNode>& child : node.children) {
      Resolve(*child, context);
    }
    if (node.kind != PlanNodeKind::kHashJoin) return;
    auto& join = static_cast<HashJoinNode&>(node);
    join.strategy = engine::ResolveJoinStrategy(
        join.children[0]->planner_bytes, join.children[1]->planner_bytes,
        context.join, *context.cluster);
  }
};

/// Early projection (the S2RDF lesson: what flows between joins dominates
/// cost). Computes, top-down, the columns each subtree must still
/// produce; at every join input carrying dead columns it inserts a
/// zero-cost prune ProjectNode. Join columns always survive, so join
/// results are unchanged — only the bytes the exchanges charge shrink.
class EarlyProjectionPass final : public OptimizerPass {
 public:
  const char* name() const override { return "early_projection"; }

  Status Run(PhysicalPlan& plan, const PassContext&) override {
    Prune(plan.root, plan.root->output_columns);
    PlanBuilder::RecomputeSchemas(*plan.root);
    // Recomputation shrinks join outputs above deeper prunes, which can
    // turn an inserted prune into a no-op; splice those out so every
    // surviving prune drops at least one column.
    RemoveNoOpPrunes(plan.root);
    return Status::OK();
  }

 private:
  static void RemoveNoOpPrunes(std::unique_ptr<PlanNode>& node) {
    for (std::unique_ptr<PlanNode>& child : node->children) {
      RemoveNoOpPrunes(child);
    }
    if (node->kind != PlanNodeKind::kProject) return;
    const auto& project = static_cast<const ProjectNode&>(*node);
    if (project.optimizer_inserted &&
        project.columns == project.children[0]->output_columns) {
      node = std::move(node->children[0]);
    }
  }

  void Prune(std::unique_ptr<PlanNode>& node,
             std::vector<std::string> required) {
    switch (node->kind) {
      case PlanNodeKind::kVpScan:
      case PlanNodeKind::kPtScan:
        return;  // Scans already emit only pattern variables.
      case PlanNodeKind::kHashJoin: {
        auto& join = static_cast<HashJoinNode&>(*node);
        for (std::unique_ptr<PlanNode>& child : join.children) {
          // A join input must keep what downstream reads plus the join
          // keys themselves.
          std::vector<std::string> child_required;
          for (const std::string& name : child->output_columns) {
            if (Contains(required, name) ||
                Contains(join.join_columns, name)) {
              child_required.push_back(name);
            }
          }
          if (child_required.size() < child->output_columns.size()) {
            child = PlanBuilder::MakeProject(std::move(child),
                                             child_required,
                                             /*optimizer_inserted=*/true);
            Prune(child->children[0], std::move(child_required));
          } else {
            Prune(child, std::move(child_required));
          }
        }
        return;
      }
      case PlanNodeKind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(*node);
        if (!Contains(required, filter.constraint.variable)) {
          required.push_back(filter.constraint.variable);
        }
        if (filter.constraint.rhs_is_variable &&
            !Contains(required, filter.constraint.rhs_variable)) {
          required.push_back(filter.constraint.rhs_variable);
        }
        break;
      }
      case PlanNodeKind::kProject:
        required = static_cast<const ProjectNode&>(*node).columns;
        break;
      case PlanNodeKind::kOrderBy: {
        const auto& order = static_cast<const OrderByNode&>(*node);
        for (const sparql::OrderKey& key : order.keys) {
          if (!Contains(required, key.variable)) {
            required.push_back(key.variable);
          }
        }
        break;
      }
      case PlanNodeKind::kAggregate: {
        const auto& aggregate = static_cast<const AggregateNode&>(*node);
        if (aggregate.count.variable.empty()) {
          // COUNT(*) counts rows; a zero-column relation holds none, so
          // everything the child produces must survive.
          required = node->children[0]->output_columns;
        } else {
          required = {aggregate.count.variable};
        }
        break;
      }
      case PlanNodeKind::kDistinct:
        // DISTINCT compares whole rows: every input column is live.
        required = node->children[0]->output_columns;
        break;
      case PlanNodeKind::kLimit:
        break;  // Pure slice: liveness passes through.
    }
    Prune(node->children[0], std::move(required));
  }
};

}  // namespace

PassManager::PassManager(PassManagerOptions options)
    : options_(std::move(options)) {}

void PassManager::AddPass(std::unique_ptr<OptimizerPass> pass) {
  passes_.push_back(std::move(pass));
}

Status PassManager::Run(PhysicalPlan& plan, const PassContext& context) {
  snapshots_.clear();
  if (options_.validate) {
    PROST_RETURN_IF_ERROR(options_.validate(plan));
  }
  for (const std::unique_ptr<OptimizerPass>& pass : passes_) {
    std::string before;
    if (options_.record_snapshots) before = plan.ToString();
    PROST_RETURN_IF_ERROR(pass->Run(plan, context));
    if (options_.record_snapshots) {
      snapshots_.push_back(
          PassSnapshot{pass->name(), std::move(before), plan.ToString()});
    }
    if (options_.validate) {
      PROST_RETURN_IF_ERROR(options_.validate(plan));
    }
  }
  return Status::OK();
}

std::unique_ptr<OptimizerPass> MakeFilterPushdownPass() {
  return std::make_unique<FilterPushdownPass>();
}

std::unique_ptr<OptimizerPass> MakeJoinOrderPass() {
  return std::make_unique<JoinOrderPass>();
}

std::unique_ptr<OptimizerPass> MakeJoinStrategyPass() {
  return std::make_unique<JoinStrategyPass>();
}

std::unique_ptr<OptimizerPass> MakeEarlyProjectionPass() {
  return std::make_unique<EarlyProjectionPass>();
}

void AddDefaultPasses(PassManager& manager, const PassOptions& options) {
  if (options.filter_pushdown) manager.AddPass(MakeFilterPushdownPass());
  if (options.join_order) manager.AddPass(MakeJoinOrderPass());
  if (options.resolve_join_strategy) manager.AddPass(MakeJoinStrategyPass());
  if (options.early_projection) manager.AddPass(MakeEarlyProjectionPass());
}

}  // namespace prost::plan
