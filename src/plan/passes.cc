#include "plan/passes.h"

#include <utility>

namespace prost::plan {
namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& existing : names) {
    if (existing == name) return true;
  }
  return false;
}

void CollectScans(PlanNode& node, std::vector<ScanNodeBase*>& scans) {
  if (node.kind == PlanNodeKind::kVpScan ||
      node.kind == PlanNodeKind::kPtScan) {
    scans.push_back(static_cast<ScanNodeBase*>(&node));
    return;
  }
  for (const std::unique_ptr<PlanNode>& child : node.children) {
    CollectScans(*child, scans);
  }
}

/// Constant-filter pushdown. FILTERs sit in the unary tail above the top
/// join; each constant one whose variable some scan binds is appended to
/// every such scan's pushed_filters and spliced out of the tail.
/// Filtering before the join is equivalent for per-row predicates, and
/// surviving rows keep their relative order, so results stay
/// bit-identical.
class FilterPushdownPass final : public OptimizerPass {
 public:
  const char* name() const override { return "filter_pushdown"; }

  Status Run(PhysicalPlan& plan, const PassContext&) override {
    std::vector<ScanNodeBase*> scans;
    CollectScans(*plan.root, scans);
    std::unique_ptr<PlanNode>* link = &plan.root;
    while (*link != nullptr) {
      PlanNode& node = **link;
      if (node.children.size() != 1) break;  // Reached the joins/scan.
      if (node.kind == PlanNodeKind::kFilter) {
        auto& filter = static_cast<FilterNode&>(node);
        if (!filter.constraint.rhs_is_variable) {
          bool pushed = false;
          for (ScanNodeBase* scan : scans) {
            if (Contains(scan->output_columns, filter.constraint.variable)) {
              scan->pushed_filters.push_back(filter.constraint);
              pushed = true;
            }
          }
          if (pushed) {
            std::unique_ptr<PlanNode> child = std::move(node.children[0]);
            *link = std::move(child);
            continue;  // Re-examine the spliced-in child.
          }
        }
      }
      link = &node.children[0];
    }
    return Status::OK();
  }
};

/// Plan-time join-strategy resolution: the exact decision rule HashJoin
/// applies at run time (engine::ResolveJoinStrategy), evaluated on the
/// plan's planner_bytes. Paranoid builds later assert the executed
/// strategy matches.
class JoinStrategyPass final : public OptimizerPass {
 public:
  const char* name() const override { return "join_strategy"; }

  Status Run(PhysicalPlan& plan, const PassContext& context) override {
    if (context.cluster == nullptr) {
      return Status::Internal("join strategy pass needs a cluster config");
    }
    Resolve(*plan.root, context);
    return Status::OK();
  }

 private:
  void Resolve(PlanNode& node, const PassContext& context) {
    for (const std::unique_ptr<PlanNode>& child : node.children) {
      Resolve(*child, context);
    }
    if (node.kind != PlanNodeKind::kHashJoin) return;
    auto& join = static_cast<HashJoinNode&>(node);
    join.strategy = engine::ResolveJoinStrategy(
        join.children[0]->planner_bytes, join.children[1]->planner_bytes,
        context.join, *context.cluster);
  }
};

/// Early projection (the S2RDF lesson: what flows between joins dominates
/// cost). Computes, top-down, the columns each subtree must still
/// produce; at every join input carrying dead columns it inserts a
/// zero-cost prune ProjectNode. Join columns always survive, so join
/// results are unchanged — only the bytes the exchanges charge shrink.
class EarlyProjectionPass final : public OptimizerPass {
 public:
  const char* name() const override { return "early_projection"; }

  Status Run(PhysicalPlan& plan, const PassContext&) override {
    Prune(plan.root, plan.root->output_columns);
    PlanBuilder::RecomputeSchemas(*plan.root);
    // Recomputation shrinks join outputs above deeper prunes, which can
    // turn an inserted prune into a no-op; splice those out so every
    // surviving prune drops at least one column.
    RemoveNoOpPrunes(plan.root);
    return Status::OK();
  }

 private:
  static void RemoveNoOpPrunes(std::unique_ptr<PlanNode>& node) {
    for (std::unique_ptr<PlanNode>& child : node->children) {
      RemoveNoOpPrunes(child);
    }
    if (node->kind != PlanNodeKind::kProject) return;
    const auto& project = static_cast<const ProjectNode&>(*node);
    if (project.optimizer_inserted &&
        project.columns == project.children[0]->output_columns) {
      node = std::move(node->children[0]);
    }
  }

  void Prune(std::unique_ptr<PlanNode>& node,
             std::vector<std::string> required) {
    switch (node->kind) {
      case PlanNodeKind::kVpScan:
      case PlanNodeKind::kPtScan:
        return;  // Scans already emit only pattern variables.
      case PlanNodeKind::kHashJoin: {
        auto& join = static_cast<HashJoinNode&>(*node);
        for (std::unique_ptr<PlanNode>& child : join.children) {
          // A join input must keep what downstream reads plus the join
          // keys themselves.
          std::vector<std::string> child_required;
          for (const std::string& name : child->output_columns) {
            if (Contains(required, name) ||
                Contains(join.join_columns, name)) {
              child_required.push_back(name);
            }
          }
          if (child_required.size() < child->output_columns.size()) {
            child = PlanBuilder::MakeProject(std::move(child),
                                             child_required,
                                             /*optimizer_inserted=*/true);
            Prune(child->children[0], std::move(child_required));
          } else {
            Prune(child, std::move(child_required));
          }
        }
        return;
      }
      case PlanNodeKind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(*node);
        if (!Contains(required, filter.constraint.variable)) {
          required.push_back(filter.constraint.variable);
        }
        if (filter.constraint.rhs_is_variable &&
            !Contains(required, filter.constraint.rhs_variable)) {
          required.push_back(filter.constraint.rhs_variable);
        }
        break;
      }
      case PlanNodeKind::kProject:
        required = static_cast<const ProjectNode&>(*node).columns;
        break;
      case PlanNodeKind::kOrderBy: {
        const auto& order = static_cast<const OrderByNode&>(*node);
        for (const sparql::OrderKey& key : order.keys) {
          if (!Contains(required, key.variable)) {
            required.push_back(key.variable);
          }
        }
        break;
      }
      case PlanNodeKind::kAggregate: {
        const auto& aggregate = static_cast<const AggregateNode&>(*node);
        if (aggregate.count.variable.empty()) {
          // COUNT(*) counts rows; a zero-column relation holds none, so
          // everything the child produces must survive.
          required = node->children[0]->output_columns;
        } else {
          required = {aggregate.count.variable};
        }
        break;
      }
      case PlanNodeKind::kDistinct:
        // DISTINCT compares whole rows: every input column is live.
        required = node->children[0]->output_columns;
        break;
      case PlanNodeKind::kLimit:
        break;  // Pure slice: liveness passes through.
    }
    Prune(node->children[0], std::move(required));
  }
};

}  // namespace

PassManager::PassManager(PassManagerOptions options)
    : options_(std::move(options)) {}

void PassManager::AddPass(std::unique_ptr<OptimizerPass> pass) {
  passes_.push_back(std::move(pass));
}

Status PassManager::Run(PhysicalPlan& plan, const PassContext& context) {
  snapshots_.clear();
  if (options_.validate) {
    PROST_RETURN_IF_ERROR(options_.validate(plan));
  }
  for (const std::unique_ptr<OptimizerPass>& pass : passes_) {
    std::string before;
    if (options_.record_snapshots) before = plan.ToString();
    PROST_RETURN_IF_ERROR(pass->Run(plan, context));
    if (options_.record_snapshots) {
      snapshots_.push_back(
          PassSnapshot{pass->name(), std::move(before), plan.ToString()});
    }
    if (options_.validate) {
      PROST_RETURN_IF_ERROR(options_.validate(plan));
    }
  }
  return Status::OK();
}

std::unique_ptr<OptimizerPass> MakeFilterPushdownPass() {
  return std::make_unique<FilterPushdownPass>();
}

std::unique_ptr<OptimizerPass> MakeJoinStrategyPass() {
  return std::make_unique<JoinStrategyPass>();
}

std::unique_ptr<OptimizerPass> MakeEarlyProjectionPass() {
  return std::make_unique<EarlyProjectionPass>();
}

void AddDefaultPasses(PassManager& manager, const PassOptions& options) {
  if (options.filter_pushdown) manager.AddPass(MakeFilterPushdownPass());
  if (options.resolve_join_strategy) manager.AddPass(MakeJoinStrategyPass());
  if (options.early_projection) manager.AddPass(MakeEarlyProjectionPass());
}

}  // namespace prost::plan
