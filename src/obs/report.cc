#include "obs/report.h"

#include <cstddef>
#include <cstdint>

#include "common/str_util.h"

namespace prost::obs {
namespace {

/// One EXPLAIN ANALYZE line: kind, label, variant, then measurements.
std::string SpanLine(const Span& span, const ReportOptions& options) {
  std::string line = SpanKindName(span.kind);
  if (!span.label.empty()) line += " " + span.label;
  if (!span.detail.empty()) line += " [" + span.detail + "]";
  line += StrFormat("  rows=%llu",
                    static_cast<unsigned long long>(span.rows_out));
  if (span.rows_in != 0 && span.rows_in != span.rows_out) {
    line += StrFormat(" (in=%llu)",
                      static_cast<unsigned long long>(span.rows_in));
  }
  if (span.estimated_rows >= 0) {
    line += StrFormat("  est=%.1f", span.estimated_rows);
  }
  line += StrFormat("  charge=%.3fms", span.charge_millis);
  if (!span.children.empty()) {
    line += StrFormat(" (total=%.3fms)", span.total_charge_millis);
  }
  if (span.storage_paged) {
    // Paged scan: planner estimate vs. bytes actually charged after
    // zone-map / bloom pruning, plus what the pruning skipped.
    line += "  bytes=" + HumanBytes(span.storage_bytes_estimated) + "/" +
            HumanBytes(span.bytes_scanned);
    line += StrFormat(
        ", skipped=%llu",
        static_cast<unsigned long long>(span.row_groups_skipped));
    if (span.partitions_skipped > 0) {
      line += StrFormat(
          " (+%llu bloom partitions)",
          static_cast<unsigned long long>(span.partitions_skipped));
    }
  } else if (span.bytes_scanned > 0) {
    line += "  scanned=" + HumanBytes(span.bytes_scanned);
  }
  if (span.bytes_shuffled > 0) {
    line += "  shuffled=" + HumanBytes(span.bytes_shuffled);
  }
  if (span.bytes_broadcast > 0) {
    line += "  broadcast=" + HumanBytes(span.bytes_broadcast);
  }
  if (options.include_wall) {
    line += StrFormat("  wall=%.3fms", span.wall_millis);
  }
  return line;
}

void RenderTree(const QueryProfile& profile, int32_t id,
                const std::string& prefix, bool last, bool is_root,
                const ReportOptions& options, std::string& out) {
  const Span& span = profile.spans()[static_cast<size_t>(id)];
  if (is_root) {
    out += SpanLine(span, options) + "\n";
  } else {
    out += prefix + (last ? "└─ " : "├─ ") + SpanLine(span, options) + "\n";
  }
  std::string child_prefix =
      is_root ? prefix : prefix + (last ? "   " : "│  ");
  for (size_t i = 0; i < span.children.size(); ++i) {
    RenderTree(profile, span.children[i], child_prefix,
               i + 1 == span.children.size(), false, options, out);
  }
}

void RenderJson(const QueryProfile& profile, int32_t id, int indent,
                std::string& out) {
  const Span& span = profile.spans()[static_cast<size_t>(id)];
  std::string pad(static_cast<size_t>(indent), ' ');
  out += pad + "{\n";
  out += pad + StrFormat("  \"kind\": \"%s\",\n", SpanKindName(span.kind));
  out += pad + StrFormat("  \"label\": \"%s\",\n", span.label.c_str());
  if (!span.detail.empty()) {
    out += pad + StrFormat("  \"detail\": \"%s\",\n", span.detail.c_str());
  }
  out += pad + StrFormat("  \"rows_in\": %llu,\n",
                         static_cast<unsigned long long>(span.rows_in));
  out += pad + StrFormat("  \"rows_out\": %llu,\n",
                         static_cast<unsigned long long>(span.rows_out));
  if (span.estimated_rows >= 0) {
    out += pad + StrFormat("  \"estimated_rows\": %.1f,\n",
                           span.estimated_rows);
  }
  out += pad + StrFormat("  \"charge_millis\": %.6f,\n", span.charge_millis);
  out += pad + StrFormat("  \"total_charge_millis\": %.6f,\n",
                         span.total_charge_millis);
  out += pad + StrFormat("  \"wall_millis\": %.3f,\n", span.wall_millis);
  out += pad + StrFormat("  \"bytes_scanned\": %llu,\n",
                         static_cast<unsigned long long>(span.bytes_scanned));
  out += pad + StrFormat("  \"bytes_shuffled\": %llu,\n",
                         static_cast<unsigned long long>(span.bytes_shuffled));
  out += pad +
         StrFormat("  \"bytes_broadcast\": %llu,\n",
                   static_cast<unsigned long long>(span.bytes_broadcast));
  if (span.storage_paged) {
    out += pad + StrFormat(
                     "  \"storage_bytes_estimated\": %llu,\n",
                     static_cast<unsigned long long>(
                         span.storage_bytes_estimated));
    out += pad + StrFormat("  \"row_groups_skipped\": %llu,\n",
                           static_cast<unsigned long long>(
                               span.row_groups_skipped));
    out += pad + StrFormat("  \"partitions_skipped\": %llu,\n",
                           static_cast<unsigned long long>(
                               span.partitions_skipped));
  }
  out += pad + "  \"children\": [";
  for (size_t i = 0; i < span.children.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    RenderJson(profile, span.children[i], indent + 4, out);
  }
  out += span.children.empty() ? "]\n" : "\n" + pad + "  ]\n";
  out += pad + "}";
}

}  // namespace

std::string ExplainAnalyze(const QueryProfile& profile,
                           const ReportOptions& options) {
  std::string out = StrFormat(
      "EXPLAIN ANALYZE  (simulated %.3f ms, %llu stages, charged %.3f ms)\n",
      profile.simulated_millis(),
      static_cast<unsigned long long>(profile.counters().stages),
      profile.TotalChargedMillis());
  if (profile.root() < 0) {
    out += "(empty profile)\n";
    return out;
  }
  RenderTree(profile, profile.root(), "", true, true, options, out);
  return out;
}

std::string ProfileJson(const QueryProfile& profile) {
  const cluster::ExecutionCounters& c = profile.counters();
  std::string out = "{\n";
  out += StrFormat("  \"simulated_millis\": %.6f,\n",
                   profile.simulated_millis());
  out += StrFormat("  \"charged_millis\": %.6f,\n",
                   profile.TotalChargedMillis());
  out += StrFormat(
      "  \"counters\": {\"bytes_scanned\": %llu, \"bytes_shuffled\": %llu, "
      "\"bytes_broadcast\": %llu, \"rows_processed\": %llu, "
      "\"kv_seeks\": %llu, \"stages\": %llu},\n",
      static_cast<unsigned long long>(c.bytes_scanned),
      static_cast<unsigned long long>(c.bytes_shuffled),
      static_cast<unsigned long long>(c.bytes_broadcast),
      static_cast<unsigned long long>(c.rows_processed),
      static_cast<unsigned long long>(c.kv_seeks),
      static_cast<unsigned long long>(c.stages));
  out += "  \"trace\":";
  if (profile.root() < 0) {
    out += " null\n";
  } else {
    out += "\n";
    RenderJson(profile, profile.root(), 2, out);
    out += "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace prost::obs
