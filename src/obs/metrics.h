#ifndef PROST_OBS_METRICS_H_
#define PROST_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace prost::obs {

/// A monotonically increasing counter. Increments are single relaxed
/// atomic adds — cheap enough for per-query (not per-row) hot paths.
/// Ordering contract: relaxed is sufficient because a counter is a single
/// word (no multi-field invariant to tear) and readers only need
/// per-counter monotonicity, which any modification order gives them;
/// exact totals are read after joining the writing threads.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-write-wins instantaneous value (table counts, sizes, ratios).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// first N buckets, plus an implicit +inf bucket.
///
/// Ordering contract (multi-field, so unlike Counter it has a torn-read
/// hazard): Observe updates bucket and sum first with relaxed adds and
/// increments `count_` *last* with release; readers load `count_` first
/// with acquire. A snapshot taken mid-storm is therefore conservative in
/// one direction only — every observation included in `count` is already
/// in its bucket and in `sum`, so `sum(buckets) >= count` and
/// `sum >= count * min_observed` hold in every concurrent snapshot
/// (obs_test HistogramSnapshotNeverTearsUnderConcurrentObserve).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Acquire: pairs with the release increment that seals each Observe,
  /// making the bucket/sum updates of all counted observations visible.
  uint64_t count() const { return count_.load(std::memory_order_acquire); }
  double sum() const {
    return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
           1e6;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  /// Sum kept in integer micro-units so concurrent adds stay exact.
  std::atomic<int64_t> sum_micros_{0};
};

/// Point-in-time copy of a registry, safe to inspect, diff, and export
/// while the live registry keeps counting.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 entries.
    uint64_t count = 0;
    double sum = 0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  /// Stable JSON rendering: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with keys in sorted order.
  std::string ToJson() const;
};

/// A named-metric registry. Registration (first `counter(name)` call)
/// takes a mutex; returned handles are stable for the registry's lifetime
/// and lock-free to update, so hot paths hoist the lookup. Thread-safe
/// throughout. `mu_` is a leaf-ranked mutex: nothing is called while it
/// is held, so metric updates are legal under any other lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used on first registration only (must be sorted
  /// ascending); later calls with the same name ignore it.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable Mutex<LockRank::kMetricsRegistry> mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PROST_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PROST_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PROST_GUARDED_BY(mu_);
};

}  // namespace prost::obs

#endif  // PROST_OBS_METRICS_H_
