#include "obs/trace.h"

#include <utility>

#include "common/logging.h"
#include "common/str_util.h"

namespace prost::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery: return "query";
    case SpanKind::kScan: return "scan";
    case SpanKind::kJoin: return "join";
    case SpanKind::kExchange: return "exchange";
    case SpanKind::kFilter: return "filter";
    case SpanKind::kProject: return "project";
    case SpanKind::kDistinct: return "distinct";
    case SpanKind::kOrderBy: return "order_by";
    case SpanKind::kAggregate: return "aggregate";
    case SpanKind::kLimit: return "limit";
    case SpanKind::kModifiers: return "modifiers";
  }
  return "unknown";
}

int32_t QueryProfile::OpenSpan(SpanKind kind, std::string label,
                               double accounted_now) {
  int32_t id = static_cast<int32_t>(spans_.size());
  Span span;
  span.kind = kind;
  span.label = std::move(label);
  if (!stack_.empty()) {
    OpenFrame& parent = stack_.back();
    // The parent stops being the innermost span: bank its segment.
    spans_[static_cast<size_t>(parent.id)].charge_millis +=
        accounted_now - parent.segment_start;
    spans_[static_cast<size_t>(parent.id)].children.push_back(id);
    span.parent = parent.id;
  }
  spans_.push_back(std::move(span));
  stack_.push_back({id, accounted_now});
  return id;
}

void QueryProfile::CloseSpan(int32_t id, double accounted_now) {
  if (stack_.empty() || stack_.back().id != id) {
    PROST_WARN("CloseSpan(%d) does not match the innermost open span", id);
    return;
  }
  Span& span = spans_[static_cast<size_t>(id)];
  span.charge_millis += accounted_now - stack_.back().segment_start;
  span.total_charge_millis = span.charge_millis;
  for (int32_t child : span.children) {
    span.total_charge_millis +=
        spans_[static_cast<size_t>(child)].total_charge_millis;
  }
  stack_.pop_back();
  // The parent becomes innermost again; restart its segment here so
  // every accounted unit lands in exactly one span.
  if (!stack_.empty()) stack_.back().segment_start = accounted_now;
}

void QueryProfile::Finish(double simulated_millis,
                          const cluster::ExecutionCounters& counters) {
  if (!stack_.empty()) {
    PROST_WARN("Finish with %zu span(s) still open", stack_.size());
  }
  simulated_millis_ = simulated_millis;
  counters_ = counters;
  finished_ = true;
}

double QueryProfile::TotalChargedMillis() const {
  double total = 0;
  for (const Span& span : spans_) total += span.charge_millis;
  return total;
}

OperatorSpan::OperatorSpan(QueryProfile* profile,
                           const cluster::CostModel& cost, SpanKind kind,
                           std::string label) {
  if (profile == nullptr) return;
  profile_ = profile;
  cost_ = &cost;
  open_counters_ = cost.counters();
  id_ = profile->OpenSpan(kind, std::move(label), cost.AccountedMillis());
}

void OperatorSpan::SetDetail(std::string detail) {
  if (active()) Mutable().detail = std::move(detail);
}

void OperatorSpan::Close() {
  if (!active()) return;
  Span& span = Mutable();
  const cluster::ExecutionCounters& now = cost_->counters();
  span.bytes_scanned = now.bytes_scanned - open_counters_.bytes_scanned;
  span.bytes_shuffled = now.bytes_shuffled - open_counters_.bytes_shuffled;
  span.bytes_broadcast = now.bytes_broadcast - open_counters_.bytes_broadcast;
  span.wall_millis = timer_.StopMillis();
  profile_->CloseSpan(id_, cost_->AccountedMillis());
  profile_ = nullptr;
}

}  // namespace prost::obs
