#ifndef PROST_OBS_TRACE_H_
#define PROST_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/timer.h"

namespace prost::obs {

/// What an execution span measures. One span per plan node (scans,
/// joins) plus spans for the pipeline operators that post-process them.
enum class SpanKind {
  kQuery,      // root: the whole query
  kScan,       // VP / PT / RPT table scan (a join-tree leaf)
  kJoin,       // hash join (broadcast or shuffle; see detail)
  kExchange,   // repartition-by-join-key shuffle
  kFilter,     // FILTER predicate
  kProject,    // SELECT projection
  kDistinct,   // DISTINCT dedupe
  kOrderBy,    // ORDER BY driver-side sort
  kAggregate,  // COUNT aggregate
  kLimit,      // OFFSET/LIMIT slice
  kModifiers,  // container for FILTER + solution modifiers
               // (baseline systems' modifier tail)
};

const char* SpanKindName(SpanKind kind);

/// One node of a query's execution trace. `charge_millis` is the span's
/// *exclusive* share of the simulated clock: the clock advance observed
/// while this span was the innermost open one. Exclusive charges
/// partition the clock, so summing them over the whole tree reproduces
/// `simulated_millis`; `total_charge_millis` is the inclusive rollup.
struct Span {
  SpanKind kind = SpanKind::kQuery;
  std::string label;       // operator identity, e.g. "PT(type ; name)"
  std::string detail;      // variant, e.g. "broadcast" vs "shuffle"
  int32_t parent = -1;     // index into QueryProfile::spans(), -1 = root
  std::vector<int32_t> children;

  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_scanned = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t bytes_broadcast = 0;
  double charge_millis = 0;        // exclusive simulated charge
  double total_charge_millis = 0;  // inclusive (self + descendants)
  double wall_millis = 0;          // real time; varies with threads
  double estimated_rows = -1;      // planner estimate; < 0 = none

  // Paged-storage telemetry (scan spans only, and only when the scan ran
  // through the buffer pool). `bytes_scanned` above is then the *actual*
  // charge after zone-map / bloom skipping; `storage_bytes_estimated` is
  // what the planner assumed (the unpruned scan size).
  bool storage_paged = false;
  uint64_t storage_bytes_estimated = 0;
  uint64_t row_groups_skipped = 0;
  uint64_t partitions_skipped = 0;
};

/// A per-query span tree, built on the coordinating thread.
///
/// NOT thread-safe by contract: all opens, closes, and attribute writes
/// happen on the thread driving the operators. Morsel-parallel operators
/// already funnel every CostModel charge through the coordinating thread
/// after their parallel region (see DESIGN.md §7), so the aggregated
/// span tree is identical between serial and parallel runs. Because of
/// this confinement the tree deliberately owns no Mutex and sits outside
/// the DESIGN.md §11 lock hierarchy.
///
/// Charge attribution: opens and closes carry the CostModel's
/// "accounted" clock (CostModel::AccountedMillis — elapsed time plus the
/// open stage's pending straggler + transfer contribution). The profile
/// slices that monotone clock into per-span exclusive segments: a span
/// accumulates the clock advance seen while it is the innermost open
/// span. Every accounted unit lands in exactly one span.
class QueryProfile {
 public:
  QueryProfile() = default;
  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  /// Opens a span as a child of the innermost open span (or as the root)
  /// and returns its id. `accounted_now` is CostModel::AccountedMillis().
  int32_t OpenSpan(SpanKind kind, std::string label, double accounted_now);

  /// Closes the innermost open span; `id` must match it.
  void CloseSpan(int32_t id, double accounted_now);

  /// Mutable access while building (attributes set between open/close).
  Span& span(int32_t id) { return spans_[static_cast<size_t>(id)]; }

  const std::vector<Span>& spans() const { return spans_; }
  int32_t root() const { return spans_.empty() ? -1 : 0; }
  bool finished() const { return finished_; }

  /// Seals the profile with the query's final simulated time and
  /// aggregate counters.
  void Finish(double simulated_millis,
              const cluster::ExecutionCounters& counters);

  double simulated_millis() const { return simulated_millis_; }
  const cluster::ExecutionCounters& counters() const { return counters_; }

  /// Sum of exclusive charges over all spans — reproduces
  /// simulated_millis when the root span brackets the whole execution.
  double TotalChargedMillis() const;

 private:
  struct OpenFrame {
    int32_t id;
    double segment_start;  // accounted clock when this span last became
                           // the innermost open span
  };

  std::vector<Span> spans_;
  std::vector<OpenFrame> stack_;
  bool finished_ = false;
  double simulated_millis_ = 0;
  cluster::ExecutionCounters counters_;
};

/// RAII operator instrumentation. Inactive (a null check per call) when
/// `profile` is null, so profiling off costs nothing on the hot path.
/// On open it snapshots the CostModel's counters and accounted clock; on
/// close it attributes the deltas (bytes scanned/shuffled/broadcast,
/// simulated charge) plus wall time to the span.
class OperatorSpan {
 public:
  OperatorSpan(QueryProfile* profile, const cluster::CostModel& cost,
               SpanKind kind, std::string label);
  ~OperatorSpan() { Close(); }
  OperatorSpan(const OperatorSpan&) = delete;
  OperatorSpan& operator=(const OperatorSpan&) = delete;

  bool active() const { return profile_ != nullptr; }

  void SetDetail(std::string detail);
  void SetRowsIn(uint64_t rows) { if (active()) Mutable().rows_in = rows; }
  void SetRowsOut(uint64_t rows) { if (active()) Mutable().rows_out = rows; }
  void SetEstimatedRows(double rows) {
    if (active()) Mutable().estimated_rows = rows;
  }

  /// Marks the span as a paged-storage scan and records what the pruning
  /// pass did (see Span's paged-storage fields).
  void SetStorage(uint64_t estimated_bytes, uint64_t row_groups_skipped,
                  uint64_t partitions_skipped) {
    if (!active()) return;
    Span& span = Mutable();
    span.storage_paged = true;
    span.storage_bytes_estimated = estimated_bytes;
    span.row_groups_skipped = row_groups_skipped;
    span.partitions_skipped = partitions_skipped;
  }

  /// Closes the span early (e.g. to exclude result post-processing).
  void Close();

 private:
  Span& Mutable() { return profile_->span(id_); }

  QueryProfile* profile_ = nullptr;
  const cluster::CostModel* cost_ = nullptr;
  int32_t id_ = -1;
  cluster::ExecutionCounters open_counters_;
  double wall_millis_ = 0;
  ScopedTimer timer_{&wall_millis_};
};

}  // namespace prost::obs

#endif  // PROST_OBS_TRACE_H_
