#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace prost::obs {
namespace {

/// JSON-renders a double without trailing-zero noise; histogram bounds
/// and gauge values are human-chosen numbers, not bit patterns.
std::string JsonNumber(double value) {
  if (std::floor(value) == value && std::fabs(value) < 1e15) {
    return StrFormat("%.0f", value);
  }
  return StrFormat("%.6g", value);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(
          std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1)) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  // upper_bound gives the first bound strictly greater; inclusive upper
  // bounds mean a value equal to bounds_[i] belongs in bucket i.
  if (bucket > 0 && bounds_[bucket - 1] == value) --bucket;
  // Bucket and sum first (relaxed), count last with release: a reader
  // that acquires `count_` then sees the bucket/sum contribution of
  // every observation it counted, so concurrent snapshots never show
  // count > sum(buckets). (Previously all three were relaxed in
  // count-first program order, which allowed exactly that tear on
  // weakly-ordered hardware.)
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<int64_t>(value * 1e6),
                        std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_release);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",", name.c_str(),
                     JsonNumber(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : histograms) {
    out += StrFormat("%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, ",
                     first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(data.count),
                     JsonNumber(data.sum).c_str());
    out += "\"bounds\": [";
    for (size_t i = 0; i < data.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonNumber(data.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat("%llu",
                       static_cast<unsigned long long>(data.bucket_counts[i]));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // mu_ only pins the name → handle maps (concurrent registration); the
  // handles themselves keep counting while we copy, so per-histogram
  // consistency relies on the acquire/release protocol documented on
  // Histogram, not on this lock.
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    // Acquire `count` *before* reading buckets/sum (see Histogram's
    // ordering contract): every counted observation is then already in
    // the buckets and the sum this snapshot reads.
    data.count = histogram->count();
    data.sum = histogram->sum();
    data.bucket_counts.resize(data.bounds.size() + 1);
    for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
      data.bucket_counts[i] = histogram->bucket_count(i);
    }
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

}  // namespace prost::obs
