#ifndef PROST_OBS_REPORT_H_
#define PROST_OBS_REPORT_H_

#include <string>

#include "obs/trace.h"

namespace prost::obs {

struct ReportOptions {
  /// Wall-clock time varies with machine load and thread count, unlike
  /// the simulated charges, which are deterministic. Off by default so
  /// the text tree is stable enough for golden tests; JSON always
  /// includes wall time.
  bool include_wall = false;
};

/// Renders the span tree as a textual EXPLAIN ANALYZE:
///
///   EXPLAIN ANALYZE  (simulated 42.500 ms, 2 stages)
///   query  charge=0.500ms
///   └─ scan VP(follows)  rows=977  est=980.0  charge=12.250ms ...
///
/// Each line shows rows in/out, estimated-vs-actual cardinality,
/// the exclusive CostModel charge, and bytes touched.
std::string ExplainAnalyze(const QueryProfile& profile,
                           const ReportOptions& options = {});

/// Renders the span tree plus totals as JSON (machine-readable form of
/// the same report; includes wall_millis).
std::string ProfileJson(const QueryProfile& profile);

}  // namespace prost::obs

#endif  // PROST_OBS_REPORT_H_
