#ifndef PROST_CLUSTER_COST_MODEL_H_
#define PROST_CLUSTER_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/config.h"

namespace prost::cluster {

/// Aggregate execution counters, reported alongside simulated time so that
/// benchmarks (and the A3 ablation) can show *why* a plan is slow.
struct ExecutionCounters {
  uint64_t bytes_scanned = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t bytes_broadcast = 0;
  uint64_t rows_processed = 0;
  uint64_t kv_seeks = 0;
  uint64_t stages = 0;

  ExecutionCounters& operator+=(const ExecutionCounters& other);
};

/// Deterministic simulated clock for the cluster.
///
/// Usage: operators open a stage, charge per-worker work (scan bytes, CPU
/// rows) and cluster-wide transfers (shuffle, broadcast), then close the
/// stage. Closing a stage advances the clock by the *maximum* worker busy
/// time (workers run in parallel; the straggler gates the stage, as in
/// Spark's BSP model) plus transfer time plus fixed stage overhead.
///
/// NOT thread-safe by contract: all Charge* calls happen on the
/// coordinating thread outside parallel regions (DESIGN.md §7), so the
/// model owns no Mutex and sits outside the §11 lock hierarchy —
/// simulated time must not observe host parallelism.
class CostModel {
 public:
  explicit CostModel(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }

  /// Opens a named stage. Stages must not nest.
  void BeginStage(const std::string& label);

  /// Charges `bytes` of columnar scan I/O to `worker`.
  void ChargeScan(uint32_t worker, uint64_t bytes);

  /// Charges `rows` of CPU row processing to `worker`.
  void ChargeCpuRows(uint32_t worker, uint64_t rows);

  /// Charges a sorted-KV seek plus `rows` sequential row reads to
  /// `worker` (Rya baseline).
  void ChargeKvSeek(uint32_t worker, uint64_t rows);

  /// Charges `rows` of loading-phase ingest work to `worker` (text
  /// parsing, dictionary encoding, table write-out — the slow path of the
  /// paper's Table 1 loading experiment).
  void ChargeLoadRows(uint32_t worker, uint64_t rows);

  /// Charges an all-to-all shuffle of `bytes` total. Each worker sends and
  /// receives ~bytes/num_workers in parallel over its own link.
  void ChargeShuffle(uint64_t bytes);

  /// Charges broadcasting `bytes` from one worker to all others (Spark's
  /// broadcast join: the driver ships the small relation everywhere).
  void ChargeBroadcast(uint64_t bytes);

  /// Closes the current stage, folding charges into the clock.
  void EndStage();

  /// Charges the fixed per-query driver overhead.
  void ChargeQueryOverhead();

  /// Advances the clock directly by `seconds` (loading-phase items that
  /// are not stage-shaped, e.g. dictionary write-out).
  void AdvanceSeconds(double seconds);

  double ElapsedMillis() const { return elapsed_sec_ * 1000.0; }
  double ElapsedSeconds() const { return elapsed_sec_; }

  /// Simulated milliseconds *including* the open stage's pending
  /// contribution (current straggler busy time + transfer time). The
  /// clock itself only advances at EndStage — by the max over workers —
  /// so per-operator attribution can't sum individual charges; instead,
  /// observability takes deltas of this monotone "accounted" clock,
  /// giving each operator its marginal contribution to the straggler
  /// path. Deltas telescope: they sum exactly to ElapsedMillis() once
  /// all stages are closed. Monotone because EndStage folds at least the
  /// pending amount into elapsed_sec_ before BeginStage zeroes it.
  double AccountedMillis() const;
  const ExecutionCounters& counters() const { return counters_; }

  /// Resets the clock and the counters.
  void Reset();

 private:
  ClusterConfig config_;
  double elapsed_sec_ = 0;
  ExecutionCounters counters_;

  bool in_stage_ = false;
  std::string stage_label_;
  std::vector<double> worker_busy_sec_;
  double stage_transfer_sec_ = 0;
};

}  // namespace prost::cluster

#endif  // PROST_CLUSTER_COST_MODEL_H_
