#include "cluster/cost_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace prost::cluster {

ExecutionCounters& ExecutionCounters::operator+=(
    const ExecutionCounters& other) {
  bytes_scanned += other.bytes_scanned;
  bytes_shuffled += other.bytes_shuffled;
  bytes_broadcast += other.bytes_broadcast;
  rows_processed += other.rows_processed;
  kv_seeks += other.kv_seeks;
  stages += other.stages;
  return *this;
}

CostModel::CostModel(const ClusterConfig& config) : config_(config) {
  worker_busy_sec_.resize(config_.num_workers, 0.0);
}

void CostModel::BeginStage(const std::string& label) {
  if (in_stage_) {
    // Programming error in an operator; close the previous stage so the
    // clock stays monotone rather than silently dropping charges.
    PROST_WARN("BeginStage('%s') while stage '%s' open", label.c_str(),
               stage_label_.c_str());
    EndStage();
  }
  in_stage_ = true;
  stage_label_ = label;
  std::fill(worker_busy_sec_.begin(), worker_busy_sec_.end(), 0.0);
  stage_transfer_sec_ = 0;
}

void CostModel::ChargeScan(uint32_t worker, uint64_t bytes) {
  worker_busy_sec_[worker % config_.num_workers] +=
      static_cast<double>(bytes) / config_.scan_bytes_per_sec;
  counters_.bytes_scanned += bytes;
}

void CostModel::ChargeCpuRows(uint32_t worker, uint64_t rows) {
  worker_busy_sec_[worker % config_.num_workers] +=
      static_cast<double>(rows) / config_.cpu_rows_per_sec;
  counters_.rows_processed += rows;
}

void CostModel::ChargeKvSeek(uint32_t worker, uint64_t rows) {
  worker_busy_sec_[worker % config_.num_workers] +=
      config_.kv_seek_sec +
      static_cast<double>(rows) / config_.cpu_rows_per_sec;
  ++counters_.kv_seeks;
  counters_.rows_processed += rows;
}

void CostModel::ChargeLoadRows(uint32_t worker, uint64_t rows) {
  worker_busy_sec_[worker % config_.num_workers] +=
      static_cast<double>(rows) / config_.load_rows_per_sec;
  counters_.rows_processed += rows;
}

void CostModel::ChargeShuffle(uint64_t bytes) {
  // All workers exchange in parallel; each link carries ~1/num_workers of
  // the traffic, and every byte crosses the network once. Every exchange
  // additionally pays the engine's fixed shuffle latency.
  stage_transfer_sec_ +=
      config_.shuffle_latency_sec +
      static_cast<double>(bytes) /
      (config_.network_bytes_per_sec * config_.num_workers);
  counters_.bytes_shuffled += bytes;
}

void CostModel::ChargeBroadcast(uint64_t bytes) {
  // The driver serializes once and ships to every worker; BitTorrent-ish
  // broadcast in Spark still costs ~bytes per receiving link, done in
  // parallel, so the wall time is ~bytes / link bandwidth.
  stage_transfer_sec_ +=
      static_cast<double>(bytes) / config_.network_bytes_per_sec;
  counters_.bytes_broadcast += bytes * config_.num_workers;
}

void CostModel::EndStage() {
  if (!in_stage_) return;
  double busiest =
      *std::max_element(worker_busy_sec_.begin(), worker_busy_sec_.end());
  elapsed_sec_ += busiest + stage_transfer_sec_ + config_.stage_overhead_sec;
  ++counters_.stages;
  in_stage_ = false;
}

double CostModel::AccountedMillis() const {
  double pending_sec = 0;
  if (in_stage_) {
    pending_sec =
        *std::max_element(worker_busy_sec_.begin(), worker_busy_sec_.end()) +
        stage_transfer_sec_;
  }
  return (elapsed_sec_ + pending_sec) * 1000.0;
}

void CostModel::ChargeQueryOverhead() {
  elapsed_sec_ += config_.query_overhead_sec;
}

void CostModel::AdvanceSeconds(double seconds) { elapsed_sec_ += seconds; }

void CostModel::Reset() {
  elapsed_sec_ = 0;
  counters_ = ExecutionCounters{};
  in_stage_ = false;
  std::fill(worker_busy_sec_.begin(), worker_busy_sec_.end(), 0.0);
  stage_transfer_sec_ = 0;
}

}  // namespace prost::cluster
