#ifndef PROST_CLUSTER_CONFIG_H_
#define PROST_CLUSTER_CONFIG_H_

#include <cstdint>

namespace prost::cluster {

/// Static description of the simulated cluster. Defaults are calibrated to
/// the paper's testbed (§4.1): 10 machines (1 master + 9 Spark workers),
/// Gigabit Ethernet, 6-core Xeon E5-2420, spinning disks, Spark 2.1.
///
/// The simulator executes queries for real on partitioned data and charges
/// time through these rates, so changing a rate rescales absolute numbers
/// but preserves the relative shapes the reproduction targets.
struct ClusterConfig {
  /// Number of worker machines (the paper's master does no work).
  uint32_t num_workers = 9;

  /// Cores per worker machine (§4.1: 6-core Xeon E5-2420). The *cost
  /// model* already folds core counts into the per-worker throughput
  /// rates below; this knob instead feeds the real executor — it is the
  /// default intra-query thread count when ExecOptions::num_threads is 0.
  /// Not rescaled by ScaleToDataset (it describes a machine, not a
  /// workload) and never affects simulated time.
  uint32_t cores_per_worker = 6;

  /// Sequential scan throughput per worker, bytes/second. Columnar reads
  /// from HDFS with OS page cache; 300 MB/s is typical for the hardware.
  double scan_bytes_per_sec = 300.0 * 1024 * 1024;

  /// Disk write throughput per worker, bytes/second (loading phase).
  double write_bytes_per_sec = 120.0 * 1024 * 1024;

  /// Row-processing rate per worker for hash-join build/probe, filtering,
  /// and projection (rows/second). A 6-core worker doing ~4M rows/s/core.
  double cpu_rows_per_sec = 24.0 * 1e6;

  /// Point-to-point network bandwidth per worker link, bytes/second
  /// (Gigabit Ethernet ≈ 125 MB/s).
  double network_bytes_per_sec = 125.0 * 1024 * 1024;

  /// Fixed latency per shuffle exchange (map-side spill, fetch setup,
  /// serialization), independent of volume. Like the stage overhead this
  /// does not scale with data size — it is a property of the engine.
  double shuffle_latency_sec = 0.15;

  /// Fixed per-stage overhead in seconds: Spark task scheduling, stage
  /// setup, result collection. Dominates tiny queries, which is why even
  /// the most selective distributed queries take ~1s in the paper.
  double stage_overhead_sec = 0.3;

  /// Fixed per-query overhead (driver planning, SQL parsing).
  double query_overhead_sec = 0.35;

  /// Per-lookup cost of a sorted key-value range seek (seconds). Used by
  /// the Rya/Accumulo baseline: index seeks are fast but serial per
  /// binding, which is exactly what makes Rya collapse on large
  /// intermediate results.
  double kv_seek_sec = 40e-6;

  /// Bytes per value when materializing intermediate relations on the
  /// wire. Spark SQL shuffles UnsafeRows carrying the *string* columns
  /// the systems operate on, so a value costs a short lexical form, not
  /// an 8-byte id.
  double bytes_per_value = 24.0;

  /// Loading-phase throughput per worker in triples/second. Covers the
  /// full ingest path (text parsing, dictionary lookups, shuffle for
  /// partitioning, columnar write-out). Calibrated so a 100M-triple load
  /// over 9 workers lands near the paper's ~20-25 minutes per pass.
  double load_rows_per_sec = 9500.0;

  /// Relations whose *planner* size estimate is at or below this are
  /// broadcast instead of shuffled (Spark 2.1's
  /// spark.sql.autoBroadcastJoinThreshold, 10 MB).
  uint64_t broadcast_threshold_bytes = 25ull * 1024 * 1024;

  /// Rescales the cluster to a dataset `actual_triples` big, keeping the
  /// work-to-capacity ratio of the paper's testbed (reference: WatDiv100M
  /// on 10 machines). Throughputs and the broadcast threshold shrink
  /// proportionally; the per-seek KV latency grows inversely (the same
  /// number of *relative* index probes costs the same relative time).
  /// This is what lets a laptop-scale run reproduce the shape — and
  /// roughly the magnitude — of the paper's 100M-triple numbers.
  void ScaleToDataset(uint64_t actual_triples,
                      uint64_t reference_triples = 100'000'000ull) {
    if (actual_triples == 0) return;
    double s = static_cast<double>(actual_triples) /
               static_cast<double>(reference_triples);
    scan_bytes_per_sec *= s;
    write_bytes_per_sec *= s;
    cpu_rows_per_sec *= s;
    network_bytes_per_sec *= s;
    load_rows_per_sec *= s;
    broadcast_threshold_bytes = static_cast<uint64_t>(
        static_cast<double>(broadcast_threshold_bytes) * s);
    if (broadcast_threshold_bytes < 1024) broadcast_threshold_bytes = 1024;
    kv_seek_sec /= s;
  }
};

}  // namespace prost::cluster

#endif  // PROST_CLUSTER_CONFIG_H_
