#include "columnar/table.h"

#include <algorithm>
#include <unordered_set>

#include "columnar/encoding.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"

namespace prost::columnar {
namespace {

constexpr uint32_t kTableMagic = 0x50525354;  // "PRST"
constexpr uint8_t kFormatVersion = 1;

}  // namespace

void WriteColumnStats(const ColumnStats& stats, ByteWriter& writer) {
  writer.PutVarint(stats.min_id);
  writer.PutVarint(stats.max_id);
  writer.PutVarint(stats.null_count);
  writer.PutVarint(stats.value_count);
}

Status ReadColumnStats(ByteReader& reader, ColumnStats* stats) {
  PROST_RETURN_IF_ERROR(reader.GetVarint(&stats->min_id));
  PROST_RETURN_IF_ERROR(reader.GetVarint(&stats->max_id));
  PROST_RETURN_IF_ERROR(reader.GetVarint(&stats->null_count));
  PROST_RETURN_IF_ERROR(reader.GetVarint(&stats->value_count));
  return Status::OK();
}

StoredTable::StoredTable(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {}

Result<const Column*> StoredTable::ColumnByName(const std::string& name) const {
  int index = schema_.FieldIndex(name);
  if (index < 0) return Status::NotFound("no column named " + name);
  return &columns_[static_cast<size_t>(index)];
}

Status StoredTable::Validate() const {
  if (columns_.size() != schema_.num_fields()) {
    return Status::Internal("column count does not match schema");
  }
  size_t rows = num_rows();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].num_rows() != rows) {
      return Status::Internal(StrFormat(
          "column %zu has %zu rows, expected %zu", i,
          columns_[i].num_rows(), rows));
    }
    if (columns_[i].kind() != schema_.field(i).kind) {
      return Status::Internal(StrFormat(
          "column %zu kind mismatch with schema field '%s'", i,
          schema_.field(i).name.c_str()));
    }
  }
  return Status::OK();
}

void StoredTable::Serialize(std::string* out) const {
  ByteWriter writer;
  writer.PutU32(kTableMagic);
  writer.PutU8(kFormatVersion);
  // Schema.
  writer.PutVarint(schema_.num_fields());
  for (const Field& field : schema_.fields()) {
    writer.PutString(field.name);
    writer.PutU8(static_cast<uint8_t>(field.kind));
  }
  size_t rows = num_rows();
  writer.PutVarint(rows);
  size_t num_groups = rows == 0 ? 0 : (rows + kRowGroupSize - 1) / kRowGroupSize;
  writer.PutVarint(num_groups);
  // Row groups: for each group, each column chunk with stats + payload.
  for (size_t group = 0; group < num_groups; ++group) {
    size_t begin = group * kRowGroupSize;
    size_t end = std::min(rows, begin + kRowGroupSize);
    writer.PutVarint(end - begin);
    for (const Column& column : columns_) {
      if (column.kind() == ColumnKind::kId) {
        IdVector slice(column.ids().begin() + begin,
                       column.ids().begin() + end);
        WriteColumnStats(ComputeStats(slice), writer);
        EncodeIdsAdaptive(slice, writer);
      } else {
        const IdListColumn& lists = column.lists();
        IdListColumn slice;
        slice.offsets.assign(1, 0);
        uint32_t base = lists.offsets[begin];
        for (size_t row = begin; row < end; ++row) {
          slice.offsets.push_back(lists.offsets[row + 1] - base);
        }
        slice.values.assign(lists.values.begin() + base,
                            lists.values.begin() + lists.offsets[end]);
        WriteColumnStats(ComputeStats(slice), writer);
        EncodeIdList(slice, writer);
      }
    }
  }
  uint64_t checksum = HashBytes(writer.buffer());
  writer.PutU64(checksum);
  *out = std::move(writer.TakeBuffer());
}

Result<StoredTable> StoredTable::Deserialize(std::string_view data) {
  if (data.size() < 8) return Status::Corruption("table file too small");
  // Verify checksum over everything except the trailing 8 bytes.
  std::string_view body = data.substr(0, data.size() - 8);
  ByteReader checksum_reader(data.substr(data.size() - 8));
  uint64_t stored_checksum;
  PROST_RETURN_IF_ERROR(checksum_reader.GetU64(&stored_checksum));
  if (HashBytes(body) != stored_checksum) {
    return Status::Corruption("table file checksum mismatch");
  }

  ByteReader reader(body);
  uint32_t magic;
  PROST_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kTableMagic) return Status::Corruption("bad table magic");
  uint8_t version;
  PROST_RETURN_IF_ERROR(reader.GetU8(&version));
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported table format version");
  }
  uint64_t num_fields;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_fields));
  Schema schema;
  for (uint64_t i = 0; i < num_fields; ++i) {
    std::string name;
    uint8_t kind;
    PROST_RETURN_IF_ERROR(reader.GetString(&name));
    PROST_RETURN_IF_ERROR(reader.GetU8(&kind));
    if (kind > static_cast<uint8_t>(ColumnKind::kIdList)) {
      return Status::Corruption("bad column kind in schema");
    }
    PROST_RETURN_IF_ERROR(schema.AddField(
        Field{std::move(name), static_cast<ColumnKind>(kind)}));
  }
  uint64_t rows, num_groups;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&rows));
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_groups));

  // Reassemble columns across row groups.
  std::vector<Column> columns;
  columns.reserve(num_fields);
  for (const Field& field : schema.fields()) {
    columns.emplace_back(field.kind == ColumnKind::kId
                             ? Column(IdVector{})
                             : Column(IdListColumn{}));
  }
  uint64_t rows_seen = 0;
  for (uint64_t group = 0; group < num_groups; ++group) {
    uint64_t group_rows;
    PROST_RETURN_IF_ERROR(reader.GetVarint(&group_rows));
    rows_seen += group_rows;
    for (uint64_t c = 0; c < num_fields; ++c) {
      ColumnStats stats;
      PROST_RETURN_IF_ERROR(ReadColumnStats(reader, &stats));
      if (schema.field(c).kind == ColumnKind::kId) {
        IdVector chunk;
        PROST_RETURN_IF_ERROR(DecodeIds(reader, group_rows, &chunk));
        IdVector& target = columns[c].mutable_ids();
        target.insert(target.end(), chunk.begin(), chunk.end());
      } else {
        IdListColumn chunk;
        PROST_RETURN_IF_ERROR(DecodeIdList(reader, group_rows, &chunk));
        IdListColumn& target = columns[c].mutable_lists();
        uint32_t base = target.values.empty()
                            ? 0
                            : static_cast<uint32_t>(target.values.size());
        for (size_t row = 0; row < chunk.num_rows(); ++row) {
          target.offsets.push_back(base + chunk.offsets[row + 1]);
        }
        target.values.insert(target.values.end(), chunk.values.begin(),
                             chunk.values.end());
      }
    }
  }
  if (rows_seen != rows) {
    return Status::Corruption("row group row counts disagree with header");
  }
  StoredTable table(std::move(schema), std::move(columns));
  PROST_RETURN_IF_ERROR(table.Validate());
  return table;
}

uint64_t ColumnSerializedSizeEstimate(const Column& column) {
  if (column.kind() == ColumnKind::kId) {
    uint64_t best = EncodedSize(column.ids(), Encoding::kPlainVarint);
    best = std::min(best, EncodedSize(column.ids(), Encoding::kRle));
    best = std::min(best, EncodedSize(column.ids(), Encoding::kDeltaVarint));
    return best + 1;
  }
  const IdListColumn& lists = column.lists();
  IdVector lengths;
  lengths.reserve(lists.num_rows());
  for (size_t row = 0; row < lists.num_rows(); ++row) {
    lengths.push_back(lists.RowSize(row));
  }
  uint64_t lengths_best =
      std::min({EncodedSize(lengths, Encoding::kPlainVarint),
                EncodedSize(lengths, Encoding::kRle),
                EncodedSize(lengths, Encoding::kDeltaVarint)});
  uint64_t values_best =
      std::min({EncodedSize(lists.values, Encoding::kPlainVarint),
                EncodedSize(lists.values, Encoding::kRle),
                EncodedSize(lists.values, Encoding::kDeltaVarint)});
  return lengths_best + values_best + 12;
}

uint64_t LexicalColumnSizeEstimate(
    const Column& column, const std::vector<uint32_t>& term_lengths) {
  std::unordered_set<TermId> distinct;
  uint64_t size = ColumnSerializedSizeEstimate(column);  // Index stream.
  const IdVector& values =
      column.kind() == ColumnKind::kId ? column.ids() : column.lists().values;
  distinct.reserve(values.size());
  for (TermId id : values) {
    if (id == kNullTermId || id >= term_lengths.size()) continue;
    if (distinct.insert(id).second) {
      size += term_lengths[id] + 2;  // Local dictionary entry.
    }
  }
  return size;
}

uint64_t StoredTable::SerializedSizeEstimate() const {
  // Header + per-group stats are small; the payload dominates. Estimate by
  // encoding sizes without materializing.
  uint64_t size = 64;
  for (const Field& field : schema_.fields()) size += field.name.size() + 2;
  for (const Column& column : columns_) {
    size += ColumnSerializedSizeEstimate(column);
  }
  return size;
}

Status WriteTableFile(const StoredTable& table, const std::string& path) {
  std::string bytes;
  table.Serialize(&bytes);
  return WriteStringToFile(path, bytes);
}

Result<StoredTable> ReadTableFile(const std::string& path) {
  std::string bytes;
  PROST_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return StoredTable::Deserialize(bytes);
}

}  // namespace prost::columnar
