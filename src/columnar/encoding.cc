#include "columnar/encoding.h"

#include <algorithm>

namespace prost::columnar {
namespace {

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

size_t VarintSize(uint64_t v) {
  size_t size = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++size;
  }
  return size;
}

int BitWidthFor(const IdVector& ids) {
  TermId max_value = 0;
  for (TermId id : ids) max_value = std::max(max_value, id);
  int width = 0;
  while (max_value != 0) {
    ++width;
    max_value >>= 1;
  }
  return width;  // 0 means every value is zero.
}

void EncodeBitPacked(const IdVector& ids, ByteWriter& writer) {
  int width = BitWidthFor(ids);
  writer.PutU8(static_cast<uint8_t>(width));
  if (width == 0) return;  // All zeros; the count is carried externally.
  uint8_t buffer = 0;
  int bits_in_buffer = 0;
  for (TermId id : ids) {
    int produced = 0;
    while (produced < width) {
      int take = std::min(8 - bits_in_buffer, width - produced);
      uint64_t mask = take == 64 ? ~0ull : ((1ull << take) - 1);
      buffer |= static_cast<uint8_t>(((id >> produced) & mask)
                                     << bits_in_buffer);
      bits_in_buffer += take;
      produced += take;
      if (bits_in_buffer == 8) {
        writer.PutU8(buffer);
        buffer = 0;
        bits_in_buffer = 0;
      }
    }
  }
  if (bits_in_buffer > 0) writer.PutU8(buffer);
}

Status DecodeBitPacked(ByteReader& reader, size_t count, IdVector* out) {
  uint8_t width;
  PROST_RETURN_IF_ERROR(reader.GetU8(&width));
  if (width > 64) return Status::Corruption("bad bit-pack width");
  out->assign(count, 0);
  if (width == 0) return Status::OK();
  uint8_t buffer = 0;
  int bits_in_buffer = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    int consumed = 0;
    while (consumed < width) {
      if (bits_in_buffer == 0) {
        PROST_RETURN_IF_ERROR(reader.GetU8(&buffer));
        bits_in_buffer = 8;
      }
      int take = std::min(bits_in_buffer, width - consumed);
      uint64_t mask = (1ull << take) - 1;
      value |= (static_cast<uint64_t>(buffer) & mask) << consumed;
      buffer = static_cast<uint8_t>(buffer >> take);
      bits_in_buffer -= take;
      consumed += take;
    }
    (*out)[i] = value;
  }
  return Status::OK();
}

void EncodePlain(const IdVector& ids, ByteWriter& writer) {
  for (TermId id : ids) writer.PutVarint(id);
}

void EncodeRle(const IdVector& ids, ByteWriter& writer) {
  size_t i = 0;
  while (i < ids.size()) {
    size_t run = 1;
    while (i + run < ids.size() && ids[i + run] == ids[i]) ++run;
    writer.PutVarint(ids[i]);
    writer.PutVarint(run);
    i += run;
  }
}

void EncodeDelta(const IdVector& ids, ByteWriter& writer) {
  TermId previous = 0;
  for (TermId id : ids) {
    // Deltas wrap modulo 2^64: ids may span the whole TermId space
    // (virtual integer ids set the top bit), so the signed difference can
    // overflow. The unsigned difference reinterpreted as signed zig-zags
    // to the same varint and round-trips exactly.
    writer.PutVarint(ZigZag(static_cast<int64_t>(id - previous)));
    previous = id;
  }
}

Status DecodePlain(ByteReader& reader, size_t count, IdVector* out) {
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    PROST_RETURN_IF_ERROR(reader.GetVarint(&(*out)[i]));
  }
  return Status::OK();
}

Status DecodeRle(ByteReader& reader, size_t count, IdVector* out) {
  out->clear();
  out->reserve(count);
  while (out->size() < count) {
    uint64_t value, run;
    PROST_RETURN_IF_ERROR(reader.GetVarint(&value));
    PROST_RETURN_IF_ERROR(reader.GetVarint(&run));
    if (run == 0 || out->size() + run > count) {
      return Status::Corruption("bad RLE run length");
    }
    out->insert(out->end(), run, value);
  }
  return Status::OK();
}

Status DecodeDelta(ByteReader& reader, size_t count, IdVector* out) {
  out->resize(count);
  // Accumulate in unsigned space: the encoder's deltas wrap modulo 2^64,
  // and a signed accumulator would overflow on ids above 2^63.
  TermId previous = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t zz;
    PROST_RETURN_IF_ERROR(reader.GetVarint(&zz));
    previous += static_cast<uint64_t>(UnZigZag(zz));
    (*out)[i] = previous;
  }
  return Status::OK();
}

}  // namespace

const char* EncodingToString(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlainVarint:
      return "plain_varint";
    case Encoding::kRle:
      return "rle";
    case Encoding::kDeltaVarint:
      return "delta_varint";
    case Encoding::kBitPacked:
      return "bit_packed";
  }
  return "?";
}

void EncodeIdsWith(const IdVector& ids, Encoding encoding,
                   ByteWriter& writer) {
  switch (encoding) {
    case Encoding::kPlainVarint:
      EncodePlain(ids, writer);
      return;
    case Encoding::kRle:
      EncodeRle(ids, writer);
      return;
    case Encoding::kDeltaVarint:
      EncodeDelta(ids, writer);
      return;
    case Encoding::kBitPacked:
      EncodeBitPacked(ids, writer);
      return;
  }
}

uint64_t EncodedSize(const IdVector& ids, Encoding encoding) {
  uint64_t size = 0;
  switch (encoding) {
    case Encoding::kPlainVarint:
      for (TermId id : ids) size += VarintSize(id);
      return size;
    case Encoding::kRle: {
      size_t i = 0;
      while (i < ids.size()) {
        size_t run = 1;
        while (i + run < ids.size() && ids[i + run] == ids[i]) ++run;
        size += VarintSize(ids[i]) + VarintSize(run);
        i += run;
      }
      return size;
    }
    case Encoding::kDeltaVarint: {
      TermId previous = 0;
      for (TermId id : ids) {
        // Wrapping difference, matching EncodeDelta.
        size += VarintSize(ZigZag(static_cast<int64_t>(id - previous)));
        previous = id;
      }
      return size;
    }
    case Encoding::kBitPacked: {
      int width = BitWidthFor(ids);
      return 1 + (ids.size() * static_cast<uint64_t>(width) + 7) / 8;
    }
  }
  return size;
}

Encoding EncodeIdsAdaptive(const IdVector& ids, ByteWriter& writer) {
  Encoding best = Encoding::kPlainVarint;
  uint64_t best_size = EncodedSize(ids, Encoding::kPlainVarint);
  for (Encoding candidate : {Encoding::kRle, Encoding::kDeltaVarint,
                             Encoding::kBitPacked}) {
    uint64_t size = EncodedSize(ids, candidate);
    if (size < best_size) {
      best = candidate;
      best_size = size;
    }
  }
  writer.PutU8(static_cast<uint8_t>(best));
  EncodeIdsWith(ids, best, writer);
  return best;
}

Status DecodeIds(ByteReader& reader, size_t count, IdVector* out) {
  uint8_t tag;
  PROST_RETURN_IF_ERROR(reader.GetU8(&tag));
  switch (static_cast<Encoding>(tag)) {
    case Encoding::kPlainVarint:
      return DecodePlain(reader, count, out);
    case Encoding::kRle:
      return DecodeRle(reader, count, out);
    case Encoding::kDeltaVarint:
      return DecodeDelta(reader, count, out);
    case Encoding::kBitPacked:
      return DecodeBitPacked(reader, count, out);
  }
  return Status::Corruption("unknown encoding tag");
}

void EncodeIdList(const IdListColumn& lists, ByteWriter& writer) {
  // Row lengths (offset deltas) compress well with RLE when most rows are
  // single-valued or NULL.
  IdVector lengths;
  lengths.reserve(lists.num_rows());
  for (size_t row = 0; row < lists.num_rows(); ++row) {
    lengths.push_back(lists.RowSize(row));
  }
  EncodeIdsAdaptive(lengths, writer);
  writer.PutVarint(lists.values.size());
  EncodeIdsAdaptive(lists.values, writer);
}

Status DecodeIdList(ByteReader& reader, size_t num_rows, IdListColumn* out) {
  IdVector lengths;
  PROST_RETURN_IF_ERROR(DecodeIds(reader, num_rows, &lengths));
  uint64_t value_count;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&value_count));
  out->offsets.assign(1, 0);
  out->offsets.reserve(num_rows + 1);
  uint64_t total = 0;
  for (uint64_t length : lengths) {
    total += length;
    out->offsets.push_back(static_cast<uint32_t>(total));
  }
  if (total != value_count) {
    return Status::Corruption("list column length/value mismatch");
  }
  return DecodeIds(reader, value_count, &out->values);
}

}  // namespace prost::columnar
