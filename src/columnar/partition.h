#ifndef PROST_COLUMNAR_PARTITION_H_
#define PROST_COLUMNAR_PARTITION_H_

#include <cstdint>
#include <vector>

#include "columnar/table.h"
#include "common/status.h"

namespace prost::columnar {

/// Assigns each row to a partition by hashing its key (Mix64(key) mod n).
/// This is the subject-hash horizontal partitioning of §3.1: every
/// Property Table row lives entirely on one worker.
std::vector<uint32_t> AssignPartitionsByHash(const IdVector& keys,
                                             uint32_t num_partitions);

/// Round-robin assignment, ignoring keys. Used by the A3 ablation to show
/// why subject-hash placement matters (it breaks subject co-location).
std::vector<uint32_t> AssignPartitionsRoundRobin(size_t num_rows,
                                                 uint32_t num_partitions);

/// Splits `table` into `num_partitions` tables according to `assignment`
/// (one entry per row). List columns are split row-wise, preserving each
/// row's value list intact.
Result<std::vector<StoredTable>> SplitByAssignment(
    const StoredTable& table, const std::vector<uint32_t>& assignment,
    uint32_t num_partitions);

/// Convenience: hash-partition `table` on flat key column `key_column`.
Result<std::vector<StoredTable>> HashPartitionTable(const StoredTable& table,
                                                    size_t key_column,
                                                    uint32_t num_partitions);

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_PARTITION_H_
