#ifndef PROST_COLUMNAR_TYPES_H_
#define PROST_COLUMNAR_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace prost::columnar {

/// Physical column kinds. All values are dictionary-encoded term ids
/// (rdf::TermId); `kIdList` is the list column used for multi-valued
/// Property Table predicates (§3.1 of the paper).
enum class ColumnKind : uint8_t {
  kId = 0,
  kIdList = 1,
};

const char* ColumnKindToString(ColumnKind kind);

/// A named, typed column slot in a schema.
struct Field {
  std::string name;
  ColumnKind kind = ColumnKind::kId;

  bool operator==(const Field& other) const = default;
};

/// An ordered list of fields. Field names are unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Appends a field; fails if the name already exists.
  Status AddField(Field field);

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the field named `name`, or -1 when absent.
  int FieldIndex(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_TYPES_H_
