#include "columnar/buffer_pool.h"

#include <utility>

namespace prost::columnar {
namespace {

/// Decoded in-memory footprint of a column chunk (what the budget caps).
uint64_t DecodedColumnBytes(const Column& column) {
  if (column.kind() == ColumnKind::kId) {
    return sizeof(TermId) * column.ids().size();
  }
  const IdListColumn& lists = column.lists();
  return sizeof(uint32_t) * lists.offsets.size() +
         sizeof(TermId) * lists.values.size();
}

obs::MetricsRegistry* ResolveRegistry(
    obs::MetricsRegistry* metrics,
    std::unique_ptr<obs::MetricsRegistry>* owned) {
  if (metrics != nullptr) return metrics;
  // Called once per counter member: create the fallback exactly once.
  if (*owned == nullptr) *owned = std::make_unique<obs::MetricsRegistry>();
  return owned->get();
}

}  // namespace

/// One cached page. Lifecycle: kLoading (decode in flight, lock dropped)
/// -> kLoaded (data valid) or kFailed (status valid; erased when the
/// last waiter drops its pin). `pins` > 0 blocks eviction; `lru_tick`
/// orders eviction among unpinned loaded frames.
struct PageFrame {
  enum State { kLoading, kLoaded, kFailed };

  PageKey key;
  State state = kLoading;
  Status status = Status::OK();
  Column data;
  uint64_t bytes = 0;
  uint32_t pins = 0;
  uint64_t lru_tick = 0;
};

const Column& PinnedPage::column() const { return frame_->data; }

void PinnedPage::Release() {
  if (pool_ != nullptr && frame_ != nullptr) pool_->Unpin(frame_);
  pool_ = nullptr;
  frame_ = nullptr;
}

BufferPool::BufferPool(uint64_t budget_bytes, obs::MetricsRegistry* metrics)
    : budget_bytes_(budget_bytes),
      owned_metrics_(),
      pages_pinned_(ResolveRegistry(metrics, &owned_metrics_)
                        ->counter("storage.pages_pinned")),
      page_misses_(ResolveRegistry(metrics, &owned_metrics_)
                       ->counter("storage.page_misses")),
      evictions_(ResolveRegistry(metrics, &owned_metrics_)
                     ->counter("storage.evictions")),
      row_groups_skipped_(ResolveRegistry(metrics, &owned_metrics_)
                              ->counter("storage.row_groups_skipped_zonemap")),
      partitions_skipped_(ResolveRegistry(metrics, &owned_metrics_)
                              ->counter("storage.partitions_skipped_bloom")),
      bytes_scanned_(ResolveRegistry(metrics, &owned_metrics_)
                         ->counter("storage.bytes_scanned")) {}

BufferPool::~BufferPool() = default;

Result<PinnedPage> BufferPool::Pin(const PagedTable& table, uint32_t group,
                                   uint32_t column) {
  PageKey key{&table, group, column};
  pages_pinned_.Increment();
  MutexLock lock(mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    PageFrame* frame = it->second.get();
    ++frame->pins;
    while (frame->state == PageFrame::kLoading) loaded_cv_.Wait(mu_);
    if (frame->state == PageFrame::kFailed) {
      Status status = frame->status;
      if (--frame->pins == 0) {
        PageKey dead = frame->key;
        frames_.erase(dead);
      }
      return status;
    }
    frame->lru_tick = ++lru_tick_;
    return PinnedPage(this, frame);
  }

  auto inserted = frames_.emplace(key, std::make_unique<PageFrame>());
  PageFrame* frame = inserted.first->second.get();
  frame->key = key;
  frame->pins = 1;
  frame->state = PageFrame::kLoading;
  page_misses_.Increment();
  // Decode outside the lock: other pages stay pinnable during the
  // decode, and concurrent pins of *this* page wait on loaded_cv_.
  lock.Unlock();
  Result<Column> decoded = table.DecodeChunk(group, column);
  lock.Lock();
  if (!decoded.ok()) {
    frame->state = PageFrame::kFailed;
    frame->status = decoded.status();
    loaded_cv_.NotifyAll();
    Status status = frame->status;
    if (--frame->pins == 0) {
      PageKey dead = frame->key;
      frames_.erase(dead);
    }
    return status;
  }
  frame->data = std::move(decoded).value();
  frame->bytes = DecodedColumnBytes(frame->data);
  frame->state = PageFrame::kLoaded;
  frame->lru_tick = ++lru_tick_;
  resident_bytes_ += frame->bytes;
  loaded_cv_.NotifyAll();
  EvictToBudgetLocked();
  return PinnedPage(this, frame);
}

void BufferPool::Unpin(PageFrame* frame) {
  MutexLock lock(mu_);
  --frame->pins;
  if (frame->pins == 0 && resident_bytes_ > budget_bytes_) {
    EvictToBudgetLocked();
  }
}

void BufferPool::EvictToBudgetLocked() {
  while (resident_bytes_ > budget_bytes_) {
    PageFrame* victim = nullptr;
    for (auto& [key, frame] : frames_) {
      if (frame->state != PageFrame::kLoaded || frame->pins != 0) continue;
      if (victim == nullptr || frame->lru_tick < victim->lru_tick) {
        victim = frame.get();
      }
    }
    if (victim == nullptr) return;  // Everything resident is pinned.
    resident_bytes_ -= victim->bytes;
    evictions_.Increment();
    PageKey dead = victim->key;
    frames_.erase(dead);
  }
}

BufferPool::Stats BufferPool::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.resident_bytes = resident_bytes_;
  for (const auto& [key, frame] : frames_) {
    if (frame->state == PageFrame::kLoaded) ++stats.resident_pages;
    if (frame->pins > 0) ++stats.pinned_pages;
  }
  return stats;
}

void BufferPool::NoteRowGroupsSkipped(uint64_t n) {
  if (n > 0) row_groups_skipped_.Add(n);
}

void BufferPool::NotePartitionsSkipped(uint64_t n) {
  if (n > 0) partitions_skipped_.Add(n);
}

void BufferPool::NoteBytesScanned(uint64_t bytes) {
  if (bytes > 0) bytes_scanned_.Add(bytes);
}

}  // namespace prost::columnar
