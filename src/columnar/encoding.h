#ifndef PROST_COLUMNAR_ENCODING_H_
#define PROST_COLUMNAR_ENCODING_H_

#include "columnar/column.h"
#include "common/io.h"
#include "common/status.h"

namespace prost::columnar {

/// Physical encodings available for an id column chunk. The writer picks
/// the smallest for each chunk (Parquet-style adaptive encoding):
///  - kPlainVarint: LEB128 per value; good for high-entropy columns.
///  - kRle: (value, run-length) varint pairs; collapses NULL runs in the
///    Property Table and constant/sorted columns.
///  - kDeltaVarint: zig-zag delta + varint; good for sorted id columns
///    (e.g. VP tables sorted by subject).
///  - kBitPacked: fixed-width packing at ceil(log2(max+1)) bits per
///    value; good for dense small-domain columns (local dictionary
///    indices, predicate ids) where even one varint byte per value is
///    too much.
enum class Encoding : uint8_t {
  kPlainVarint = 0,
  kRle = 1,
  kDeltaVarint = 2,
  kBitPacked = 3,
};

const char* EncodingToString(Encoding encoding);

/// Encodes `ids` with the specified encoding, appending to `writer`.
void EncodeIdsWith(const IdVector& ids, Encoding encoding, ByteWriter& writer);

/// Picks the smallest of the three encodings for `ids`, writes a one-byte
/// encoding tag followed by the payload, and returns the chosen encoding.
Encoding EncodeIdsAdaptive(const IdVector& ids, ByteWriter& writer);

/// Decodes a chunk written by EncodeIdsAdaptive. `count` values are read.
Status DecodeIds(ByteReader& reader, size_t count, IdVector* out);

/// Encodes / decodes a list column (offsets as deltas + values adaptive).
void EncodeIdList(const IdListColumn& lists, ByteWriter& writer);
Status DecodeIdList(ByteReader& reader, size_t num_rows, IdListColumn* out);

/// Returns the encoded size in bytes of `ids` under `encoding` without
/// materializing the encoding (used by size estimators / benchmarks).
uint64_t EncodedSize(const IdVector& ids, Encoding encoding);

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_ENCODING_H_
