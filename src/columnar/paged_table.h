#ifndef PROST_COLUMNAR_PAGED_TABLE_H_
#define PROST_COLUMNAR_PAGED_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/bloom.h"
#include "columnar/column.h"
#include "columnar/table.h"
#include "columnar/types.h"
#include "common/status.h"

namespace prost::columnar {

/// One column chunk of one row group: zone-map statistics plus the
/// location of its encoded bytes inside the table payload. The stats are
/// what scan pruning consults *before* any decode happens.
struct ChunkMeta {
  ColumnStats stats;
  uint64_t offset = 0;  // Into PagedTable payload.
  uint64_t bytes = 0;   // Encoded chunk size.
};

/// One row group: a horizontal slice of the table, decoded column by
/// column on demand through the buffer pool.
struct RowGroupMeta {
  uint64_t row_begin = 0;
  uint32_t num_rows = 0;
  std::vector<ChunkMeta> chunks;  // One per schema field.
};

/// A columnar table held in *encoded* form: schema + per-row-group chunk
/// metadata (zone maps) + one contiguous encoded payload + a bloom filter
/// over the key column (field 0). This is the beyond-RAM counterpart of
/// StoredTable — a scan decodes only the chunks its pruning could not
/// rule out, through BufferPool pins, and row groups enumerate in row
/// order so paged scans are bit-identical to in-memory scans.
class PagedTable {
 public:
  PagedTable() = default;

  /// Repacks a decoded table into row groups of `row_group_rows` rows,
  /// computing per-chunk zone maps and the key-column bloom filter.
  /// Rounds `row_group_rows` == 0 up to kRowGroupSize.
  static PagedTable FromStored(const StoredTable& table,
                               uint32_t row_group_rows = 0);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_fields(); }
  size_t num_groups() const { return groups_.size(); }
  const RowGroupMeta& group(size_t g) const { return groups_[g]; }
  const ColumnStats& stats(size_t g, size_t c) const {
    return groups_[g].chunks[c].stats;
  }
  const BloomFilter& key_bloom() const { return key_bloom_; }

  /// Encoded payload bytes (what a full decode would read).
  uint64_t payload_bytes() const { return payload_.size(); }
  /// Encoded bytes of one column across all groups (cost apportioning).
  uint64_t ColumnPayloadBytes(size_t c) const;

  /// Decodes one column chunk of one row group. List-column chunks come
  /// back with group-local offsets (offsets[0] == 0). Normally reached
  /// through BufferPool::Pin, which caches the result.
  Result<Column> DecodeChunk(size_t g, size_t c) const;

  /// Fully decodes back into a StoredTable (persistence, and the
  /// differential tests proving paged == in-memory).
  Result<StoredTable> ToStored() const;

  /// Own serialized form: like StoredTable's but with a chunk directory
  /// and the bloom filter, so zone maps round-trip without a decode.
  void Serialize(std::string* out) const;
  static Result<PagedTable> Deserialize(std::string_view data);

 private:
  Schema schema_;
  uint64_t num_rows_ = 0;
  std::vector<RowGroupMeta> groups_;
  BloomFilter key_bloom_;
  std::string payload_;  // Concatenated encoded chunks.
};

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_PAGED_TABLE_H_
