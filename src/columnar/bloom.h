#ifndef PROST_COLUMNAR_BLOOM_H_
#define PROST_COLUMNAR_BLOOM_H_

#include <cstdint>
#include <vector>

#include "columnar/column.h"
#include "common/io.h"
#include "common/status.h"

namespace prost::columnar {

/// Blocked-probe bloom filter over term ids, built per partition on the
/// key column so constant-key VP lookups and semi-join probes can skip a
/// partition without decoding any of it (the WiredTiger src/bloom shape:
/// k probes by double hashing into one flat bit array).
///
/// A default-constructed filter is "absent": MayContain() returns true
/// for every id, so code paths that never built a filter stay correct.
/// A filter Build()-ed over an empty key set rejects every id.
class BloomFilter {
 public:
  /// ~1% false positives at the default 10 bits per key with 7 probes.
  static constexpr uint32_t kDefaultBitsPerKey = 10;

  BloomFilter() = default;

  /// Builds over `keys` (kNullTermId entries are skipped — NULL never
  /// equals a lookup constant).
  static BloomFilter Build(const IdVector& keys,
                           uint32_t bits_per_key = kDefaultBitsPerKey);

  /// False means `id` is definitely not in the key set; true means it
  /// might be (or no filter was built).
  bool MayContain(TermId id) const;

  bool empty() const { return bits_.empty(); }
  uint64_t num_bits() const { return uint64_t{64} * bits_.size(); }
  uint32_t num_hashes() const { return num_hashes_; }
  /// Exact size Serialize() will write.
  uint64_t SerializedBytes() const;

  void Serialize(ByteWriter& writer) const;
  static Result<BloomFilter> Deserialize(ByteReader& reader);

  bool operator==(const BloomFilter& other) const = default;

 private:
  uint32_t num_hashes_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_BLOOM_H_
