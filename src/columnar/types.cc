#include "columnar/types.h"

namespace prost::columnar {

const char* ColumnKindToString(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kId:
      return "id";
    case ColumnKind::kIdList:
      return "id_list";
  }
  return "?";
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

Status Schema::AddField(Field field) {
  if (FieldIndex(field.name) >= 0) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace prost::columnar
