#ifndef PROST_COLUMNAR_COLUMN_H_
#define PROST_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "columnar/types.h"
#include "rdf/triple.h"

namespace prost::columnar {

using rdf::TermId;
using rdf::kNullTermId;

/// Flat column of term ids. Id 0 (kNullTermId) encodes NULL — the
/// Property Table is NULL-heavy by construction, which the RLE codec
/// compresses away exactly like Parquet's run-length encoding does in the
/// paper (§3.1).
using IdVector = std::vector<TermId>;

/// List column: row i holds values[offsets[i] .. offsets[i+1]). An empty
/// range encodes NULL. offsets.size() == num_rows + 1.
struct IdListColumn {
  std::vector<uint32_t> offsets{0};
  IdVector values;

  size_t num_rows() const { return offsets.size() - 1; }

  /// Pre-sizes for `rows` appended rows holding `total_values` values in
  /// all — callers that know the final shape (e.g. the Property Table
  /// builder) avoid reallocation churn in AppendRow loops.
  void Reserve(size_t rows, size_t total_values) {
    offsets.reserve(offsets.size() + rows);
    values.reserve(values.size() + total_values);
  }

  /// Appends one row with the given values (empty == NULL row).
  void AppendRow(const IdVector& row_values);

  /// Value count of row i.
  size_t RowSize(size_t i) const { return offsets[i + 1] - offsets[i]; }

  bool operator==(const IdListColumn& other) const = default;
};

/// A column is either a flat id column or a list column.
class Column {
 public:
  Column() : data_(IdVector{}) {}
  explicit Column(IdVector ids) : data_(std::move(ids)) {}
  explicit Column(IdListColumn lists) : data_(std::move(lists)) {}

  ColumnKind kind() const {
    return std::holds_alternative<IdVector>(data_) ? ColumnKind::kId
                                                   : ColumnKind::kIdList;
  }

  size_t num_rows() const;

  const IdVector& ids() const { return std::get<IdVector>(data_); }
  IdVector& mutable_ids() { return std::get<IdVector>(data_); }
  const IdListColumn& lists() const { return std::get<IdListColumn>(data_); }
  IdListColumn& mutable_lists() { return std::get<IdListColumn>(data_); }

  bool operator==(const Column& other) const = default;

 private:
  std::variant<IdVector, IdListColumn> data_;
};

/// Per-column-chunk statistics, written into the table file and used by
/// scan pruning and the cost model.
struct ColumnStats {
  TermId min_id = 0;
  TermId max_id = 0;
  uint64_t null_count = 0;
  uint64_t value_count = 0;  // Total non-null values (list entries count).

  bool operator==(const ColumnStats& other) const = default;
};

/// Computes statistics over a flat column.
ColumnStats ComputeStats(const IdVector& ids);

/// Computes statistics over a list column (null = empty list).
ColumnStats ComputeStats(const IdListColumn& lists);

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_COLUMN_H_
