#ifndef PROST_COLUMNAR_TABLE_H_
#define PROST_COLUMNAR_TABLE_H_

#include <string>
#include <vector>

#include "columnar/column.h"
#include "columnar/types.h"
#include "common/io.h"
#include "common/status.h"

namespace prost::columnar {

/// (De)serializes per-chunk ColumnStats in the varint wire form shared by
/// the StoredTable and PagedTable formats.
void WriteColumnStats(const ColumnStats& stats, ByteWriter& writer);
Status ReadColumnStats(ByteReader& reader, ColumnStats* stats);

/// Rows per row group in the serialized table format. Column chunks are
/// encoded (and carry statistics) per row group, like Parquet pages.
inline constexpr size_t kRowGroupSize = 65536;

/// An in-memory columnar table: a schema plus one column per field, all
/// with the same row count. This is the unit of storage for VP tables and
/// the Property Table.
class StoredTable {
 public:
  StoredTable() = default;
  explicit StoredTable(Schema schema) : schema_(std::move(schema)) {
    columns_.resize(schema_.num_fields());
  }
  StoredTable(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].num_rows();
  }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Column by field name; error when the field does not exist.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Validates that all columns have equal row counts and kinds matching
  /// the schema.
  Status Validate() const;

  /// Serializes the table (row-grouped, adaptively encoded, with per-chunk
  /// statistics and a trailing checksum).
  void Serialize(std::string* out) const;
  static Result<StoredTable> Deserialize(std::string_view data);

  /// Serialized size without materializing the bytes.
  uint64_t SerializedSizeEstimate() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

/// Writes `table` to `path` / reads it back.
Status WriteTableFile(const StoredTable& table, const std::string& path);
Result<StoredTable> ReadTableFile(const std::string& path);

/// Serialized-size estimate of one column under the best adaptive
/// encoding (used for per-column scan-cost accounting).
uint64_t ColumnSerializedSizeEstimate(const Column& column);

/// Size estimate of one column in the *lexical* on-disk form
/// (lexical_format.h): distinct values' string bytes (the local
/// dictionary) plus the encoded index stream. This is what the simulated
/// Spark planner and scanner see — Parquet string columns, not raw ids.
/// `term_lengths` comes from rdf::Dictionary::TermLengths().
uint64_t LexicalColumnSizeEstimate(const Column& column,
                                   const std::vector<uint32_t>& term_lengths);

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_TABLE_H_
