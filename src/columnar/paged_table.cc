#include "columnar/paged_table.h"

#include <algorithm>
#include <utility>

#include "columnar/encoding.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"

namespace prost::columnar {
namespace {

constexpr uint32_t kPagedMagic = 0x50525350;  // "PRSP"
constexpr uint8_t kPagedVersion = 1;

/// Slices rows [begin, end) of `column` into a standalone Column; list
/// columns get rebased (group-local) offsets.
Column SliceColumn(const Column& column, size_t begin, size_t end) {
  if (column.kind() == ColumnKind::kId) {
    return Column(IdVector(column.ids().begin() + begin,
                           column.ids().begin() + end));
  }
  const IdListColumn& lists = column.lists();
  IdListColumn slice;
  slice.offsets.assign(1, 0);
  uint32_t base = lists.offsets[begin];
  for (size_t row = begin; row < end; ++row) {
    slice.offsets.push_back(lists.offsets[row + 1] - base);
  }
  slice.values.assign(lists.values.begin() + base,
                      lists.values.begin() + lists.offsets[end]);
  return Column(std::move(slice));
}

ColumnStats StatsOf(const Column& column) {
  return column.kind() == ColumnKind::kId ? ComputeStats(column.ids())
                                          : ComputeStats(column.lists());
}

void EncodeColumn(const Column& column, ByteWriter& writer) {
  if (column.kind() == ColumnKind::kId) {
    EncodeIdsAdaptive(column.ids(), writer);
  } else {
    EncodeIdList(column.lists(), writer);
  }
}

}  // namespace

PagedTable PagedTable::FromStored(const StoredTable& table,
                                  uint32_t row_group_rows) {
  PagedTable paged;
  paged.schema_ = table.schema();
  paged.num_rows_ = table.num_rows();
  size_t group_rows =
      row_group_rows == 0 ? kRowGroupSize : size_t{row_group_rows};
  size_t rows = table.num_rows();
  ByteWriter payload;
  for (size_t begin = 0; begin < rows; begin += group_rows) {
    size_t end = std::min(rows, begin + group_rows);
    RowGroupMeta group;
    group.row_begin = begin;
    group.num_rows = static_cast<uint32_t>(end - begin);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      Column slice = SliceColumn(table.column(c), begin, end);
      ChunkMeta chunk;
      chunk.stats = StatsOf(slice);
      chunk.offset = payload.size();
      EncodeColumn(slice, payload);
      chunk.bytes = payload.size() - chunk.offset;
      group.chunks.push_back(chunk);
    }
    paged.groups_.push_back(std::move(group));
  }
  paged.payload_ = std::move(payload.TakeBuffer());
  if (table.num_columns() > 0) {
    const Column& key = table.column(0);
    paged.key_bloom_ = BloomFilter::Build(
        key.kind() == ColumnKind::kId ? key.ids() : key.lists().values);
  }
  return paged;
}

uint64_t PagedTable::ColumnPayloadBytes(size_t c) const {
  uint64_t total = 0;
  for (const RowGroupMeta& group : groups_) total += group.chunks[c].bytes;
  return total;
}

Result<Column> PagedTable::DecodeChunk(size_t g, size_t c) const {
  if (g >= groups_.size() || c >= schema_.num_fields()) {
    return Status::Internal(StrFormat("chunk (%zu, %zu) out of range", g, c));
  }
  const RowGroupMeta& group = groups_[g];
  const ChunkMeta& chunk = group.chunks[c];
  if (chunk.offset + chunk.bytes > payload_.size()) {
    return Status::Corruption("chunk extends past payload");
  }
  ByteReader reader(
      std::string_view(payload_).substr(chunk.offset, chunk.bytes));
  if (schema_.field(c).kind == ColumnKind::kId) {
    IdVector ids;
    PROST_RETURN_IF_ERROR(DecodeIds(reader, group.num_rows, &ids));
    return Column(std::move(ids));
  }
  IdListColumn lists;
  PROST_RETURN_IF_ERROR(DecodeIdList(reader, group.num_rows, &lists));
  return Column(std::move(lists));
}

Result<StoredTable> PagedTable::ToStored() const {
  std::vector<Column> columns;
  columns.reserve(schema_.num_fields());
  for (const Field& field : schema_.fields()) {
    columns.emplace_back(field.kind == ColumnKind::kId
                             ? Column(IdVector{})
                             : Column(IdListColumn{}));
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      Result<Column> chunk = DecodeChunk(g, c);
      PROST_RETURN_IF_ERROR(chunk.status());
      if (chunk->kind() == ColumnKind::kId) {
        IdVector& target = columns[c].mutable_ids();
        target.insert(target.end(), chunk->ids().begin(), chunk->ids().end());
      } else {
        const IdListColumn& src = chunk->lists();
        IdListColumn& target = columns[c].mutable_lists();
        uint32_t base = static_cast<uint32_t>(target.values.size());
        for (size_t row = 0; row < src.num_rows(); ++row) {
          target.offsets.push_back(base + src.offsets[row + 1]);
        }
        target.values.insert(target.values.end(), src.values.begin(),
                             src.values.end());
      }
    }
  }
  StoredTable table(schema_, std::move(columns));
  PROST_RETURN_IF_ERROR(table.Validate());
  if (table.num_rows() != num_rows_) {
    return Status::Corruption("paged table row count disagrees with groups");
  }
  return table;
}

void PagedTable::Serialize(std::string* out) const {
  ByteWriter writer;
  writer.PutU32(kPagedMagic);
  writer.PutU8(kPagedVersion);
  writer.PutVarint(schema_.num_fields());
  for (const Field& field : schema_.fields()) {
    writer.PutString(field.name);
    writer.PutU8(static_cast<uint8_t>(field.kind));
  }
  writer.PutVarint(num_rows_);
  writer.PutVarint(groups_.size());
  for (const RowGroupMeta& group : groups_) {
    writer.PutVarint(group.row_begin);
    writer.PutVarint(group.num_rows);
    for (const ChunkMeta& chunk : group.chunks) {
      WriteColumnStats(chunk.stats, writer);
      writer.PutVarint(chunk.offset);
      writer.PutVarint(chunk.bytes);
    }
  }
  key_bloom_.Serialize(writer);
  writer.PutString(payload_);
  uint64_t checksum = HashBytes(writer.buffer());
  writer.PutU64(checksum);
  *out = std::move(writer.TakeBuffer());
}

Result<PagedTable> PagedTable::Deserialize(std::string_view data) {
  if (data.size() < 8) return Status::Corruption("paged table too small");
  std::string_view body = data.substr(0, data.size() - 8);
  ByteReader checksum_reader(data.substr(data.size() - 8));
  uint64_t stored_checksum;
  PROST_RETURN_IF_ERROR(checksum_reader.GetU64(&stored_checksum));
  if (HashBytes(body) != stored_checksum) {
    return Status::Corruption("paged table checksum mismatch");
  }

  ByteReader reader(body);
  uint32_t magic;
  PROST_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kPagedMagic) return Status::Corruption("bad paged magic");
  uint8_t version;
  PROST_RETURN_IF_ERROR(reader.GetU8(&version));
  if (version != kPagedVersion) {
    return Status::Corruption("unsupported paged format version");
  }
  PagedTable paged;
  uint64_t num_fields;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_fields));
  for (uint64_t i = 0; i < num_fields; ++i) {
    std::string name;
    uint8_t kind;
    PROST_RETURN_IF_ERROR(reader.GetString(&name));
    PROST_RETURN_IF_ERROR(reader.GetU8(&kind));
    if (kind > static_cast<uint8_t>(ColumnKind::kIdList)) {
      return Status::Corruption("bad column kind in paged schema");
    }
    PROST_RETURN_IF_ERROR(paged.schema_.AddField(
        Field{std::move(name), static_cast<ColumnKind>(kind)}));
  }
  PROST_RETURN_IF_ERROR(reader.GetVarint(&paged.num_rows_));
  uint64_t num_groups;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_groups));
  uint64_t rows_seen = 0;
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta group;
    PROST_RETURN_IF_ERROR(reader.GetVarint(&group.row_begin));
    uint64_t group_rows;
    PROST_RETURN_IF_ERROR(reader.GetVarint(&group_rows));
    group.num_rows = static_cast<uint32_t>(group_rows);
    rows_seen += group_rows;
    for (uint64_t c = 0; c < num_fields; ++c) {
      ChunkMeta chunk;
      PROST_RETURN_IF_ERROR(ReadColumnStats(reader, &chunk.stats));
      PROST_RETURN_IF_ERROR(reader.GetVarint(&chunk.offset));
      PROST_RETURN_IF_ERROR(reader.GetVarint(&chunk.bytes));
      group.chunks.push_back(chunk);
    }
    paged.groups_.push_back(std::move(group));
  }
  if (rows_seen != paged.num_rows_) {
    return Status::Corruption("paged group row counts disagree with header");
  }
  Result<BloomFilter> bloom = BloomFilter::Deserialize(reader);
  PROST_RETURN_IF_ERROR(bloom.status());
  paged.key_bloom_ = std::move(bloom).value();
  PROST_RETURN_IF_ERROR(reader.GetString(&paged.payload_));
  for (const RowGroupMeta& group : paged.groups_) {
    for (const ChunkMeta& chunk : group.chunks) {
      if (chunk.offset + chunk.bytes > paged.payload_.size()) {
        return Status::Corruption("paged chunk extends past payload");
      }
    }
  }
  return paged;
}

}  // namespace prost::columnar
