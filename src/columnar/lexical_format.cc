#include "columnar/lexical_format.h"

#include <algorithm>
#include <unordered_map>

#include "columnar/encoding.h"
#include "common/compression.h"
#include "common/hash.h"
#include "common/io.h"

namespace prost::columnar {
namespace {

constexpr uint32_t kLexicalMagic = 0x5052534c;  // "PRSL"

/// Maps the global ids in `values` to dense local indices (0 reserved for
/// NULL) and writes the local dictionary.
void WriteLocalDictAndIndices(const IdVector& values,
                              const rdf::Dictionary& dictionary,
                              ByteWriter& writer) {
  std::unordered_map<TermId, uint64_t> local;
  std::vector<TermId> order;  // local index - 1 -> global id
  IdVector indices;
  indices.reserve(values.size());
  for (TermId id : values) {
    if (id == kNullTermId) {
      indices.push_back(0);
      continue;
    }
    auto [it, inserted] = local.emplace(id, local.size() + 1);
    if (inserted) order.push_back(id);
    indices.push_back(it->second);
  }
  writer.PutVarint(order.size());
  for (TermId id : order) {
    // Ids in a StoredTable always resolve; a miss is a programming error
    // surfaced as an empty lexical (caught by round-trip tests).
    Result<std::string_view> lexical = dictionary.LookupId(id);
    writer.PutString(lexical.ok() ? lexical.value() : std::string_view());
  }
  EncodeIdsAdaptive(indices, writer);
}

Status ReadLocalDictAndIndices(ByteReader& reader, size_t count,
                               rdf::Dictionary* dictionary, IdVector* out) {
  uint64_t dict_size;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&dict_size));
  std::vector<TermId> local_to_global(dict_size + 1, kNullTermId);
  std::string lexical;
  for (uint64_t i = 1; i <= dict_size; ++i) {
    PROST_RETURN_IF_ERROR(reader.GetString(&lexical));
    local_to_global[i] = dictionary->Intern(lexical);
  }
  IdVector indices;
  PROST_RETURN_IF_ERROR(DecodeIds(reader, count, &indices));
  out->resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] > dict_size) {
      return Status::Corruption("local dictionary index out of range");
    }
    (*out)[i] = local_to_global[indices[i]];
  }
  return Status::OK();
}

}  // namespace

Status SerializeLexicalTable(const StoredTable& table,
                             const rdf::Dictionary& dictionary,
                             std::string* out) {
  PROST_RETURN_IF_ERROR(table.Validate());
  ByteWriter writer;
  writer.PutU32(kLexicalMagic);
  writer.PutVarint(table.schema().num_fields());
  for (const Field& field : table.schema().fields()) {
    writer.PutString(field.name);
    writer.PutU8(static_cast<uint8_t>(field.kind));
  }
  writer.PutVarint(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (column.kind() == ColumnKind::kId) {
      WriteLocalDictAndIndices(column.ids(), dictionary, writer);
    } else {
      const IdListColumn& lists = column.lists();
      IdVector lengths;
      lengths.reserve(lists.num_rows());
      for (size_t row = 0; row < lists.num_rows(); ++row) {
        lengths.push_back(lists.RowSize(row));
      }
      EncodeIdsAdaptive(lengths, writer);
      writer.PutVarint(lists.values.size());
      WriteLocalDictAndIndices(lists.values, dictionary, writer);
    }
  }
  uint64_t checksum = HashBytes(writer.buffer());
  writer.PutU64(checksum);
  *out = std::move(writer.TakeBuffer());
  return Status::OK();
}

Result<StoredTable> DeserializeLexicalTable(std::string_view data,
                                            rdf::Dictionary* dictionary) {
  if (data.size() < 8) return Status::Corruption("lexical table too small");
  std::string_view body = data.substr(0, data.size() - 8);
  ByteReader checksum_reader(data.substr(data.size() - 8));
  uint64_t stored_checksum;
  PROST_RETURN_IF_ERROR(checksum_reader.GetU64(&stored_checksum));
  if (HashBytes(body) != stored_checksum) {
    return Status::Corruption("lexical table checksum mismatch");
  }
  ByteReader reader(body);
  uint32_t magic;
  PROST_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kLexicalMagic) {
    return Status::Corruption("bad lexical table magic");
  }
  uint64_t num_fields;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_fields));
  Schema schema;
  for (uint64_t i = 0; i < num_fields; ++i) {
    std::string name;
    uint8_t kind;
    PROST_RETURN_IF_ERROR(reader.GetString(&name));
    PROST_RETURN_IF_ERROR(reader.GetU8(&kind));
    if (kind > static_cast<uint8_t>(ColumnKind::kIdList)) {
      return Status::Corruption("bad column kind");
    }
    PROST_RETURN_IF_ERROR(
        schema.AddField(Field{std::move(name), static_cast<ColumnKind>(kind)}));
  }
  uint64_t rows;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&rows));
  std::vector<Column> columns;
  for (uint64_t c = 0; c < num_fields; ++c) {
    if (schema.field(c).kind == ColumnKind::kId) {
      IdVector values;
      PROST_RETURN_IF_ERROR(
          ReadLocalDictAndIndices(reader, rows, dictionary, &values));
      columns.emplace_back(std::move(values));
    } else {
      IdVector lengths;
      PROST_RETURN_IF_ERROR(DecodeIds(reader, rows, &lengths));
      uint64_t value_count;
      PROST_RETURN_IF_ERROR(reader.GetVarint(&value_count));
      IdListColumn lists;
      PROST_RETURN_IF_ERROR(ReadLocalDictAndIndices(
          reader, value_count, dictionary, &lists.values));
      lists.offsets.assign(1, 0);
      uint64_t total = 0;
      for (uint64_t length : lengths) {
        total += length;
        lists.offsets.push_back(static_cast<uint32_t>(total));
      }
      if (total != value_count) {
        return Status::Corruption("list column length/value mismatch");
      }
      columns.emplace_back(std::move(lists));
    }
  }
  StoredTable table(std::move(schema), std::move(columns));
  PROST_RETURN_IF_ERROR(table.Validate());
  return table;
}

Status WriteLexicalTableFile(const StoredTable& table,
                             const rdf::Dictionary& dictionary,
                             const std::string& path) {
  std::string bytes;
  PROST_RETURN_IF_ERROR(SerializeLexicalTable(table, dictionary, &bytes));
  // Parquet pages are codec-compressed; deflate stands in for snappy.
  PROST_ASSIGN_OR_RETURN(std::string compressed, DeflateCompress(bytes));
  return WriteStringToFile(path, compressed);
}

Result<StoredTable> ReadLexicalTableFile(const std::string& path,
                                         rdf::Dictionary* dictionary) {
  std::string compressed;
  PROST_RETURN_IF_ERROR(ReadFileToString(path, &compressed));
  PROST_ASSIGN_OR_RETURN(std::string bytes, DeflateDecompress(compressed));
  return DeserializeLexicalTable(bytes, dictionary);
}

}  // namespace prost::columnar
