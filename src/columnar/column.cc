#include "columnar/column.h"

namespace prost::columnar {

void IdListColumn::AppendRow(const IdVector& row_values) {
  values.insert(values.end(), row_values.begin(), row_values.end());
  offsets.push_back(static_cast<uint32_t>(values.size()));
}

size_t Column::num_rows() const {
  if (kind() == ColumnKind::kId) return ids().size();
  return lists().num_rows();
}

ColumnStats ComputeStats(const IdVector& ids) {
  ColumnStats stats;
  bool first = true;
  for (TermId id : ids) {
    if (id == kNullTermId) {
      ++stats.null_count;
      continue;
    }
    ++stats.value_count;
    if (first) {
      stats.min_id = stats.max_id = id;
      first = false;
    } else {
      if (id < stats.min_id) stats.min_id = id;
      if (id > stats.max_id) stats.max_id = id;
    }
  }
  return stats;
}

ColumnStats ComputeStats(const IdListColumn& lists) {
  ColumnStats stats;
  bool first = true;
  for (size_t row = 0; row < lists.num_rows(); ++row) {
    if (lists.RowSize(row) == 0) {
      ++stats.null_count;
      continue;
    }
    for (uint32_t i = lists.offsets[row]; i < lists.offsets[row + 1]; ++i) {
      TermId id = lists.values[i];
      ++stats.value_count;
      if (first) {
        stats.min_id = stats.max_id = id;
        first = false;
      } else {
        if (id < stats.min_id) stats.min_id = id;
        if (id > stats.max_id) stats.max_id = id;
      }
    }
  }
  return stats;
}

}  // namespace prost::columnar
