#ifndef PROST_COLUMNAR_BUFFER_POOL_H_
#define PROST_COLUMNAR_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "columnar/paged_table.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace prost::columnar {

class BufferPool;

/// Internal page-frame state; defined in buffer_pool.cc. Everything
/// outside src/columnar/ goes through PinnedPage (tools/lint.py
/// `buffer-pool-internals` enforces this fence).
struct PageFrame;

/// Identity of one cached page: a decoded column chunk of one row group.
struct PageKey {
  const PagedTable* table = nullptr;
  uint32_t group = 0;
  uint32_t column = 0;

  bool operator==(const PageKey& other) const = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& key) const {
    uint64_t h = Mix64(reinterpret_cast<uintptr_t>(key.table));
    return static_cast<size_t>(HashCombine(
        h, (uint64_t{key.group} << 32) | key.column));
  }
};

/// Move-only handle to a pinned page. While a PinnedPage is live its
/// column cannot be evicted, so the reference stays valid across the
/// caller's scan of the chunk — including on pool worker threads during
/// morsel-parallel scans. Destroying (or moving from) the handle unpins.
class PinnedPage {
 public:
  PinnedPage() = default;
  ~PinnedPage() { Release(); }
  PinnedPage(PinnedPage&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  PinnedPage& operator=(PinnedPage&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
    }
    return *this;
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  bool valid() const { return frame_ != nullptr; }
  /// The decoded column chunk. Valid for the lifetime of this handle.
  const Column& column() const;

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, PageFrame* frame)
      : pool_(pool), frame_(frame) {}
  void Release();

  BufferPool* pool_ = nullptr;
  PageFrame* frame_ = nullptr;
};

/// A byte-budgeted cache of decoded column chunks with LRU eviction —
/// the beyond-RAM execution engine's only path from encoded row groups
/// to decoded columns. Pin() returns a handle that keeps the chunk
/// resident; unpinned chunks are evicted least-recently-used once the
/// decoded footprint exceeds the budget (the budget is a soft cap: it
/// can be exceeded transiently while everything resident is pinned).
///
/// Thread-safe: scan workers Pin/unpin concurrently from parallel
/// regions. The pool mutex (LockRank::kBufferPool) is never held across
/// a decode — a miss marks the frame "loading", drops the lock, decodes,
/// then finalizes, and concurrent pins of the same page wait on a
/// condition variable instead of decoding twice.
///
/// The pool also owns the `storage.*` metrics (registered in `metrics`,
/// or in an internal registry when none is given): pages_pinned,
/// page_misses, evictions, row_groups_skipped_zonemap,
/// partitions_skipped_bloom, bytes_scanned. Scan layers report their
/// pruning decisions through the Note*() methods so the /metrics
/// endpoint sees one coherent storage surface.
class BufferPool {
 public:
  explicit BufferPool(uint64_t budget_bytes,
                      obs::MetricsRegistry* metrics = nullptr);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the decoded chunk (group, column) of `table`, decoding on miss.
  /// `table` must outlive the pool's last reference to it.
  Result<PinnedPage> Pin(const PagedTable& table, uint32_t group,
                         uint32_t column);

  uint64_t budget_bytes() const { return budget_bytes_; }

  struct Stats {
    uint64_t resident_bytes = 0;
    uint64_t resident_pages = 0;
    uint64_t pinned_pages = 0;
  };
  Stats GetStats() const;

  /// Pruning/byte accounting from the scan layers (rolled into the
  /// storage.* counters; byte amounts are in the cost model's lexical
  /// domain so they line up with ChargeScan).
  void NoteRowGroupsSkipped(uint64_t n);
  void NotePartitionsSkipped(uint64_t n);
  void NoteBytesScanned(uint64_t bytes);

 private:
  friend class PinnedPage;

  void Unpin(PageFrame* frame);
  /// Evicts unpinned frames, least-recently-used first, until the
  /// resident footprint fits the budget (or nothing evictable remains).
  void EvictToBudgetLocked() PROST_REQUIRES(mu_);

  const uint64_t budget_bytes_;
  /// Fallback registry when the caller does not supply one.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  // Lock-free counter handles (see obs::Counter): safe to bump while
  // holding mu_ or no lock at all, so pool paths never touch the
  // registry mutex.
  obs::Counter& pages_pinned_;
  obs::Counter& page_misses_;
  obs::Counter& evictions_;
  obs::Counter& row_groups_skipped_;
  obs::Counter& partitions_skipped_;
  obs::Counter& bytes_scanned_;

  mutable Mutex<LockRank::kBufferPool> mu_;
  CondVar loaded_cv_;
  std::unordered_map<PageKey, std::unique_ptr<PageFrame>, PageKeyHash>
      frames_ PROST_GUARDED_BY(mu_);
  uint64_t resident_bytes_ PROST_GUARDED_BY(mu_) = 0;
  uint64_t lru_tick_ PROST_GUARDED_BY(mu_) = 0;
};

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_BUFFER_POOL_H_
