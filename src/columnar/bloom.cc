#include "columnar/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace prost::columnar {
namespace {

/// Second hash stream for double hashing; decorrelated from Mix64(id) by
/// a fixed odd constant. Forced odd so probe i covers all bit positions.
inline uint64_t SecondHash(TermId id) {
  return Mix64(id ^ 0x9e3779b97f4a7c15ULL) | 1;
}

inline uint64_t VarintLen(uint64_t value) {
  uint64_t n = 1;
  while (value >= 128) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

BloomFilter BloomFilter::Build(const IdVector& keys, uint32_t bits_per_key) {
  BloomFilter filter;
  uint64_t num_keys = 0;
  for (TermId id : keys) {
    if (id != kNullTermId) ++num_keys;
  }
  // An empty key set still gets one zeroed word: empty() then means "no
  // filter", not "no keys", and MayContain correctly rejects everything.
  uint64_t bits = std::max<uint64_t>(64, num_keys * bits_per_key);
  filter.bits_.assign((bits + 63) / 64, 0);
  // k = bits/keys * ln 2, the standard FPR-minimizing probe count.
  filter.num_hashes_ = std::clamp<uint32_t>(
      static_cast<uint32_t>(bits_per_key * 0.69), 1, 16);
  uint64_t num_bits = filter.num_bits();
  for (TermId id : keys) {
    if (id == kNullTermId) continue;
    uint64_t h = Mix64(id);
    uint64_t step = SecondHash(id);
    for (uint32_t i = 0; i < filter.num_hashes_; ++i) {
      uint64_t bit = h % num_bits;
      filter.bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
      h += step;
    }
  }
  return filter;
}

bool BloomFilter::MayContain(TermId id) const {
  if (bits_.empty()) return true;  // No filter built: cannot prune.
  uint64_t num_bits = this->num_bits();
  uint64_t h = Mix64(id);
  uint64_t step = SecondHash(id);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = h % num_bits;
    if ((bits_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
    h += step;
  }
  return true;
}

uint64_t BloomFilter::SerializedBytes() const {
  return VarintLen(num_hashes_) + VarintLen(bits_.size()) + 8 * bits_.size();
}

void BloomFilter::Serialize(ByteWriter& writer) const {
  writer.PutVarint(num_hashes_);
  writer.PutVarint(bits_.size());
  for (uint64_t word : bits_) writer.PutU64(word);
}

Result<BloomFilter> BloomFilter::Deserialize(ByteReader& reader) {
  BloomFilter filter;
  uint64_t num_hashes, num_words;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_hashes));
  PROST_RETURN_IF_ERROR(reader.GetVarint(&num_words));
  if (num_hashes > 64) return Status::Corruption("bloom probe count");
  if (num_words > reader.remaining() / 8) {
    return Status::Corruption("bloom filter truncated");
  }
  filter.num_hashes_ = static_cast<uint32_t>(num_hashes);
  filter.bits_.resize(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    PROST_RETURN_IF_ERROR(reader.GetU64(&filter.bits_[i]));
  }
  if (!filter.bits_.empty() && filter.num_hashes_ == 0) {
    return Status::Corruption("bloom filter with zero probes");
  }
  return filter;
}

}  // namespace prost::columnar
