#include "columnar/partition.h"

#include "common/hash.h"
#include "common/str_util.h"

namespace prost::columnar {

std::vector<uint32_t> AssignPartitionsByHash(const IdVector& keys,
                                             uint32_t num_partitions) {
  std::vector<uint32_t> assignment(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    assignment[i] = static_cast<uint32_t>(Mix64(keys[i]) % num_partitions);
  }
  return assignment;
}

std::vector<uint32_t> AssignPartitionsRoundRobin(size_t num_rows,
                                                 uint32_t num_partitions) {
  std::vector<uint32_t> assignment(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    assignment[i] = static_cast<uint32_t>(i % num_partitions);
  }
  return assignment;
}

Result<std::vector<StoredTable>> SplitByAssignment(
    const StoredTable& table, const std::vector<uint32_t>& assignment,
    uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  if (assignment.size() != table.num_rows()) {
    return Status::InvalidArgument(StrFormat(
        "assignment size %zu does not match row count %zu",
        assignment.size(), table.num_rows()));
  }
  std::vector<std::vector<Column>> partition_columns(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    for (const Field& field : table.schema().fields()) {
      partition_columns[p].emplace_back(field.kind == ColumnKind::kId
                                            ? Column(IdVector{})
                                            : Column(IdListColumn{}));
    }
  }
  for (size_t row = 0; row < table.num_rows(); ++row) {
    uint32_t p = assignment[row];
    if (p >= num_partitions) {
      return Status::InvalidArgument("assignment index out of range");
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& source = table.column(c);
      Column& target = partition_columns[p][c];
      if (source.kind() == ColumnKind::kId) {
        target.mutable_ids().push_back(source.ids()[row]);
      } else {
        const IdListColumn& lists = source.lists();
        IdVector row_values(lists.values.begin() + lists.offsets[row],
                            lists.values.begin() + lists.offsets[row + 1]);
        target.mutable_lists().AppendRow(row_values);
      }
    }
  }
  std::vector<StoredTable> partitions;
  partitions.reserve(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    partitions.emplace_back(table.schema(), std::move(partition_columns[p]));
    PROST_RETURN_IF_ERROR(partitions.back().Validate());
  }
  return partitions;
}

Result<std::vector<StoredTable>> HashPartitionTable(const StoredTable& table,
                                                    size_t key_column,
                                                    uint32_t num_partitions) {
  if (key_column >= table.num_columns()) {
    return Status::InvalidArgument("key column index out of range");
  }
  if (table.column(key_column).kind() != ColumnKind::kId) {
    return Status::InvalidArgument("key column must be a flat id column");
  }
  return SplitByAssignment(
      table,
      AssignPartitionsByHash(table.column(key_column).ids(), num_partitions),
      num_partitions);
}

}  // namespace prost::columnar
