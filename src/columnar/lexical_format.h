#ifndef PROST_COLUMNAR_LEXICAL_FORMAT_H_
#define PROST_COLUMNAR_LEXICAL_FORMAT_H_

#include <string>

#include "columnar/table.h"
#include "common/status.h"
#include "rdf/dictionary.h"

namespace prost::columnar {

/// Parquet-faithful on-disk serialization of a StoredTable.
///
/// The in-memory tables hold global dictionary ids, but Parquet files are
/// self-contained: each column chunk carries a *local* dictionary of the
/// distinct string values appearing in it, and the data pages store
/// RLE/bit-packed indices into that local dictionary. This matters for
/// reproducing Table 1 of the paper: a subject IRI that participates in
/// eight predicates is stored once per VP table (eight local dictionaries)
/// — which is exactly why PRoST's VP+PT footprint lands above SPARQLGX's
/// flat text but far below S2RDF's ExtVP explosion.
///
/// Layout per column: local dictionary (varint count + length-prefixed
/// lexicals, id 0 reserved for NULL), then the value indices with the
/// adaptive encoding from encoding.h. List columns store row lengths
/// followed by flattened value indices.
Status SerializeLexicalTable(const StoredTable& table,
                             const rdf::Dictionary& dictionary,
                             std::string* out);

/// Deserializes a lexical table, interning its strings into `dictionary`
/// (which may already contain them) and producing global-id columns.
Result<StoredTable> DeserializeLexicalTable(std::string_view data,
                                            rdf::Dictionary* dictionary);

/// File wrappers.
Status WriteLexicalTableFile(const StoredTable& table,
                             const rdf::Dictionary& dictionary,
                             const std::string& path);
Result<StoredTable> ReadLexicalTableFile(const std::string& path,
                                         rdf::Dictionary* dictionary);

}  // namespace prost::columnar

#endif  // PROST_COLUMNAR_LEXICAL_FORMAT_H_
