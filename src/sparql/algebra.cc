#include "sparql/algebra.h"

#include <map>

#include "common/str_util.h"

namespace prost::sparql {

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> vars;
  if (subject.is_variable()) vars.push_back(subject.value);
  if (predicate.is_variable()) vars.push_back(predicate.value);
  if (object.is_variable()) vars.push_back(object.value);
  return vars;
}

std::string TriplePattern::ToString() const {
  return subject.ToNTriples() + " " + predicate.ToNTriples() + " " +
         object.ToNTriples();
}

std::set<std::string> BasicGraphPattern::Variables() const {
  std::set<std::string> vars;
  for (const TriplePattern& pattern : patterns) {
    for (std::string& v : pattern.Variables()) vars.insert(std::move(v));
  }
  return vars;
}

bool BasicGraphPattern::IsConnected() const {
  if (patterns.size() <= 1) return true;
  // Union-find over pattern indices, merging patterns that share a
  // variable.
  std::vector<size_t> parent(patterns.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<std::string, size_t> first_seen;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (const std::string& v : patterns[i].Variables()) {
      auto [it, inserted] = first_seen.emplace(v, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  size_t root = find(0);
  for (size_t i = 1; i < patterns.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string FilterConstraint::ToString() const {
  std::string rhs =
      rhs_is_variable ? "?" + rhs_variable : rhs_term.ToNTriples();
  return StrFormat("FILTER(?%s %s %s)", variable.c_str(),
                   CompareOpToString(op), rhs.c_str());
}

std::vector<std::string> Query::EffectiveProjection() const {
  if (!projection.empty()) return projection;
  std::set<std::string> vars = bgp.Variables();
  return std::vector<std::string>(vars.begin(), vars.end());
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  if (count.has_value()) {
    out += "(COUNT(";
    if (count->distinct) out += "DISTINCT ";
    out += count->variable.empty() ? "*" : "?" + count->variable;
    out += ") AS ?" + count->alias + ")";
  } else if (distinct) {
    out += "DISTINCT ";
  }
  if (count.has_value()) {
    // Projection handled above.
  } else if (projection.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) out += " ";
      out += "?" + projection[i];
    }
  }
  out += " WHERE {\n";
  for (const TriplePattern& pattern : bgp.patterns) {
    out += "  " + pattern.ToString() + " .\n";
  }
  for (const FilterConstraint& filter : filters) {
    out += "  " + filter.ToString() + " .\n";
  }
  out += "}";
  if (!order_by.empty()) {
    out += " ORDER BY";
    for (const OrderKey& key : order_by) {
      out += key.descending ? " DESC(?" + key.variable + ")"
                            : " ?" + key.variable;
    }
  }
  if (limit > 0) out += StrFormat(" LIMIT %llu",
                                  static_cast<unsigned long long>(limit));
  if (offset > 0) out += StrFormat(" OFFSET %llu",
                                   static_cast<unsigned long long>(offset));
  return out;
}

Status ValidateQuery(const Query& query) {
  if (query.bgp.patterns.empty()) {
    return Status::InvalidArgument("query has an empty basic graph pattern");
  }
  for (const TriplePattern& pattern : query.bgp.patterns) {
    if (pattern.predicate.is_variable()) {
      return Status::Unimplemented(
          "variable predicates are not supported (pattern: " +
          pattern.ToString() + ")");
    }
    if (!pattern.predicate.is_iri()) {
      return Status::InvalidArgument("predicate must be an IRI (pattern: " +
                                     pattern.ToString() + ")");
    }
    if (pattern.subject.is_literal()) {
      return Status::InvalidArgument(
          "subject cannot be a literal (pattern: " + pattern.ToString() +
          ")");
    }
  }
  std::set<std::string> bound = query.bgp.Variables();
  for (const std::string& v : query.projection) {
    if (!bound.count(v)) {
      return Status::InvalidArgument("projected variable ?" + v +
                                     " is not bound in the BGP");
    }
  }
  for (const FilterConstraint& filter : query.filters) {
    if (!bound.count(filter.variable)) {
      return Status::InvalidArgument("filtered variable ?" +
                                     filter.variable +
                                     " is not bound in the BGP");
    }
    if (filter.rhs_is_variable && !bound.count(filter.rhs_variable)) {
      return Status::InvalidArgument("filtered variable ?" +
                                     filter.rhs_variable +
                                     " is not bound in the BGP");
    }
    if (!filter.rhs_is_variable && filter.rhs_term.is_variable()) {
      return Status::Internal("filter rhs marked constant holds a variable");
    }
  }
  for (const OrderKey& key : query.order_by) {
    if (!bound.count(key.variable)) {
      return Status::InvalidArgument("ORDER BY variable ?" + key.variable +
                                     " is not bound in the BGP");
    }
  }
  if (query.count.has_value()) {
    if (!query.projection.empty() || !query.order_by.empty()) {
      return Status::Unimplemented(
          "COUNT cannot be combined with other projections or ORDER BY");
    }
    if (!query.count->variable.empty() &&
        !bound.count(query.count->variable)) {
      return Status::InvalidArgument("counted variable ?" +
                                     query.count->variable +
                                     " is not bound in the BGP");
    }
    if (query.count->alias.empty()) {
      return Status::InvalidArgument("COUNT requires an AS ?alias");
    }
  }
  if (!query.bgp.IsConnected()) {
    return Status::Unimplemented(
        "disconnected BGPs (cross products) are not supported");
  }
  return Status::OK();
}

}  // namespace prost::sparql
