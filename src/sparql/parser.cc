#include "sparql/parser.h"

#include <cctype>
#include <map>

#include "common/str_util.h"

namespace prost::sparql {
namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";

enum class TokenKind {
  kIri,        // <...>
  kPrefixedName,  // ns:local  or  ns:
  kVariable,   // ?name
  kLiteral,    // "..." with optional @lang / ^^<dt>
  kInteger,    // bare integer literal
  kKeyword,    // SELECT, DISTINCT, WHERE, PREFIX, LIMIT, a
  kPunct,      // { } . ; , *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token token;
    token.line = line_;
    if (pos_ >= input_.size()) {
      token.kind = TokenKind::kEnd;
      return token;
    }
    char c = input_[pos_];
    if (c == '{' || c == '}' || c == '.' || c == ';' || c == ',' ||
        c == '*' || c == '(' || c == ')') {
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      ++pos_;
      return token;
    }
    if (c == '=' || c == '!' || c == '>') {
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        token.text.push_back('=');
        ++pos_;
      }
      if (token.text == "!") return Error("'!' must be part of '!='");
      return token;
    }
    if (c == '<') {
      // '<' is ambiguous: an IRI opener or a comparison operator. An IRI
      // has its closing '>' before any whitespace.
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        token.kind = TokenKind::kPunct;
        token.text = "<=";
        pos_ += 2;
        return token;
      }
      size_t end = input_.find('>', pos_);
      size_t space = input_.find_first_of(" \t\r\n", pos_);
      if (end == std::string_view::npos ||
          (space != std::string_view::npos && space < end)) {
        token.kind = TokenKind::kPunct;
        token.text = "<";
        ++pos_;
        return token;
      }
      token.kind = TokenKind::kIri;
      token.text = std::string(input_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return token;
    }
    if (c == '?' || c == '$') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && (std::isalnum(Peek()) || Peek() == '_')) {
        ++pos_;
      }
      if (pos_ == start) return Error("empty variable name");
      token.kind = TokenKind::kVariable;
      token.text = std::string(input_.substr(start, pos_ - start));
      return token;
    }
    if (c == '"') {
      size_t end = std::string_view::npos;
      for (size_t i = pos_ + 1; i < input_.size(); ++i) {
        if (input_[i] == '\\') {
          ++i;
          continue;
        }
        if (input_[i] == '"') {
          end = i;
          break;
        }
      }
      if (end == std::string_view::npos) {
        return Error("unterminated literal");
      }
      size_t after = end + 1;
      // Absorb @lang / ^^<dt>.
      if (after < input_.size() && input_[after] == '@') {
        ++after;
        while (after < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[after])) ||
                input_[after] == '-')) {
          ++after;
        }
      } else if (after + 1 < input_.size() && input_[after] == '^' &&
                 input_[after + 1] == '^') {
        after += 2;
        if (after >= input_.size() || input_[after] != '<') {
          return Error("expected <datatype> after ^^");
        }
        size_t close = input_.find('>', after);
        if (close == std::string_view::npos) {
          return Error("unterminated datatype IRI");
        }
        after = close + 1;
      }
      token.kind = TokenKind::kLiteral;
      token.text = std::string(input_.substr(pos_, after - pos_));
      pos_ = after;
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      token.kind = TokenKind::kInteger;
      token.text = std::string(input_.substr(start, pos_ - start));
      return token;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      bool has_colon = false;
      while (pos_ < input_.size()) {
        char k = Peek();
        if (std::isalnum(static_cast<unsigned char>(k)) || k == '_' ||
            k == '-') {
          ++pos_;
        } else if (k == ':' && !has_colon) {
          has_colon = true;
          ++pos_;
        } else {
          break;
        }
      }
      token.text = std::string(input_.substr(start, pos_ - start));
      token.kind =
          has_colon ? TokenKind::kPrefixedName : TokenKind::kKeyword;
      return token;
    }
    return Error(StrFormat("unexpected character '%c'", c));
  }

 private:
  char Peek() const { return input_[pos_]; }

  void SkipWhitespaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrFormat("line %zu: %s", line_, message.c_str()));
  }

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

bool KeywordIs(const Token& token, std::string_view keyword) {
  if (token.kind != TokenKind::kKeyword) return false;
  if (token.text.size() != keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) !=
        keyword[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  Result<Query> Parse() {
    PROST_RETURN_IF_ERROR(Advance());
    PROST_RETURN_IF_ERROR(ParsePrologue());
    Query query;
    PROST_RETURN_IF_ERROR(ParseSelect(&query));
    PROST_RETURN_IF_ERROR(ParseWhere(&query));
    PROST_RETURN_IF_ERROR(ParseModifiers(&query));
    if (current_.kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + current_.text + "'");
    }
    PROST_RETURN_IF_ERROR(ValidateQuery(query));
    return query;
  }

 private:
  Status Advance() {
    PROST_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrFormat("line %zu: %s", current_.line, message.c_str()));
  }

  bool IsPunct(std::string_view p) const {
    return current_.kind == TokenKind::kPunct && current_.text == p;
  }

  Status ExpectPunct(std::string_view p) {
    if (!IsPunct(p)) {
      return Error(StrFormat("expected '%s', found '%s'",
                             std::string(p).c_str(),
                             current_.text.c_str()));
    }
    return Advance();
  }

  Status ParsePrologue() {
    while (KeywordIs(current_, "PREFIX")) {
      PROST_RETURN_IF_ERROR(Advance());
      if (current_.kind != TokenKind::kPrefixedName) {
        return Error("expected prefix name after PREFIX");
      }
      std::string prefix = current_.text;
      if (prefix.empty() || prefix.back() != ':') {
        return Error("prefix declaration must end with ':'");
      }
      prefix.pop_back();
      PROST_RETURN_IF_ERROR(Advance());
      if (current_.kind != TokenKind::kIri) {
        return Error("expected <iri> in prefix declaration");
      }
      prefixes_[prefix] = current_.text;
      PROST_RETURN_IF_ERROR(Advance());
    }
    return Status::OK();
  }

  Status ParseSelect(Query* query) {
    if (!KeywordIs(current_, "SELECT")) {
      return Error("expected SELECT, found '" + current_.text + "'");
    }
    PROST_RETURN_IF_ERROR(Advance());
    if (KeywordIs(current_, "DISTINCT")) {
      query->distinct = true;
      PROST_RETURN_IF_ERROR(Advance());
    }
    if (IsPunct("*")) {
      return Advance();
    }
    if (IsPunct("(")) {
      // (COUNT([DISTINCT] * | ?var) AS ?alias)
      PROST_RETURN_IF_ERROR(Advance());
      if (!KeywordIs(current_, "COUNT")) {
        return Error("expected COUNT after '(' in SELECT");
      }
      PROST_RETURN_IF_ERROR(Advance());
      PROST_RETURN_IF_ERROR(ExpectPunct("("));
      CountAggregate count;
      if (KeywordIs(current_, "DISTINCT")) {
        count.distinct = true;
        PROST_RETURN_IF_ERROR(Advance());
      }
      if (IsPunct("*")) {
        PROST_RETURN_IF_ERROR(Advance());
      } else if (current_.kind == TokenKind::kVariable) {
        count.variable = current_.text;
        PROST_RETURN_IF_ERROR(Advance());
      } else {
        return Error("COUNT expects '*' or a variable");
      }
      PROST_RETURN_IF_ERROR(ExpectPunct(")"));
      if (!KeywordIs(current_, "AS")) {
        return Error("expected AS after COUNT(...)");
      }
      PROST_RETURN_IF_ERROR(Advance());
      if (current_.kind != TokenKind::kVariable) {
        return Error("expected ?alias after AS");
      }
      count.alias = current_.text;
      PROST_RETURN_IF_ERROR(Advance());
      PROST_RETURN_IF_ERROR(ExpectPunct(")"));
      query->count = std::move(count);
      return Status::OK();
    }
    while (current_.kind == TokenKind::kVariable) {
      query->projection.push_back(current_.text);
      PROST_RETURN_IF_ERROR(Advance());
    }
    if (query->projection.empty()) {
      return Error("SELECT requires '*' or at least one variable");
    }
    return Status::OK();
  }

  Result<rdf::Term> ParseTermToken(bool allow_literal) {
    switch (current_.kind) {
      case TokenKind::kIri: {
        rdf::Term term = rdf::Term::Iri(current_.text);
        PROST_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kVariable: {
        rdf::Term term = rdf::Term::Variable(current_.text);
        PROST_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kPrefixedName: {
        size_t colon = current_.text.find(':');
        std::string prefix = current_.text.substr(0, colon);
        std::string local = current_.text.substr(colon + 1);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Error("undeclared prefix '" + prefix + ":'");
        }
        rdf::Term term = rdf::Term::Iri(it->second + local);
        PROST_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kLiteral: {
        if (!allow_literal) return Error("literal not allowed here");
        PROST_ASSIGN_OR_RETURN(rdf::Term term,
                               rdf::ParseTerm(current_.text));
        PROST_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kInteger: {
        if (!allow_literal) return Error("literal not allowed here");
        rdf::Term term = rdf::Term::TypedLiteral(current_.text,
                                                 std::string(kXsdInteger));
        PROST_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kKeyword:
        if (current_.text == "a") {
          rdf::Term term = rdf::Term::Iri(std::string(kRdfType));
          PROST_RETURN_IF_ERROR(Advance());
          return term;
        }
        return Error("unexpected keyword '" + current_.text + "'");
      default:
        return Error("expected term, found '" + current_.text + "'");
    }
  }

  Status ParseWhere(Query* query) {
    if (!KeywordIs(current_, "WHERE")) {
      return Error("expected WHERE, found '" + current_.text + "'");
    }
    PROST_RETURN_IF_ERROR(Advance());
    PROST_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      if (KeywordIs(current_, "FILTER")) {
        PROST_RETURN_IF_ERROR(ParseFilter(query));
        if (IsPunct(".")) PROST_RETURN_IF_ERROR(Advance());
        continue;
      }
      PROST_ASSIGN_OR_RETURN(rdf::Term subject,
                             ParseTermToken(/*allow_literal=*/false));
      // predicate-object list: p o (, o)* (; p o ...)* .
      while (true) {
        PROST_ASSIGN_OR_RETURN(rdf::Term predicate,
                               ParseTermToken(/*allow_literal=*/false));
        while (true) {
          PROST_ASSIGN_OR_RETURN(rdf::Term object,
                                 ParseTermToken(/*allow_literal=*/true));
          query->bgp.patterns.push_back(
              TriplePattern{subject, predicate, object});
          if (IsPunct(",")) {
            PROST_RETURN_IF_ERROR(Advance());
            continue;
          }
          break;
        }
        if (IsPunct(";")) {
          PROST_RETURN_IF_ERROR(Advance());
          // Allow a trailing ';' before '.' or '}'.
          if (IsPunct(".") || IsPunct("}")) break;
          continue;
        }
        break;
      }
      if (IsPunct(".")) {
        PROST_RETURN_IF_ERROR(Advance());
      } else if (!IsPunct("}")) {
        return Error("expected '.', ';' or '}' after triple pattern");
      }
    }
    return Advance();  // consume '}'
  }

  Status ParseFilter(Query* query) {
    PROST_RETURN_IF_ERROR(Advance());  // consume FILTER
    PROST_RETURN_IF_ERROR(ExpectPunct("("));
    if (current_.kind != TokenKind::kVariable) {
      return Error("FILTER expects a variable on the left-hand side");
    }
    FilterConstraint filter;
    filter.variable = current_.text;
    PROST_RETURN_IF_ERROR(Advance());
    if (current_.kind != TokenKind::kPunct) {
      return Error("expected comparison operator in FILTER");
    }
    if (current_.text == "=") {
      filter.op = CompareOp::kEq;
    } else if (current_.text == "!=") {
      filter.op = CompareOp::kNe;
    } else if (current_.text == "<") {
      filter.op = CompareOp::kLt;
    } else if (current_.text == "<=") {
      filter.op = CompareOp::kLe;
    } else if (current_.text == ">") {
      filter.op = CompareOp::kGt;
    } else if (current_.text == ">=") {
      filter.op = CompareOp::kGe;
    } else {
      return Error("unknown comparison operator '" + current_.text + "'");
    }
    PROST_RETURN_IF_ERROR(Advance());
    if (current_.kind == TokenKind::kVariable) {
      filter.rhs_is_variable = true;
      filter.rhs_variable = current_.text;
      PROST_RETURN_IF_ERROR(Advance());
    } else {
      PROST_ASSIGN_OR_RETURN(filter.rhs_term,
                             ParseTermToken(/*allow_literal=*/true));
    }
    PROST_RETURN_IF_ERROR(ExpectPunct(")"));
    query->filters.push_back(std::move(filter));
    return Status::OK();
  }

  Status ParseModifiers(Query* query) {
    if (KeywordIs(current_, "ORDER")) {
      PROST_RETURN_IF_ERROR(Advance());
      if (!KeywordIs(current_, "BY")) {
        return Error("expected BY after ORDER");
      }
      PROST_RETURN_IF_ERROR(Advance());
      while (true) {
        OrderKey key;
        if (current_.kind == TokenKind::kVariable) {
          key.variable = current_.text;
          PROST_RETURN_IF_ERROR(Advance());
        } else if (KeywordIs(current_, "ASC") ||
                   KeywordIs(current_, "DESC")) {
          key.descending = KeywordIs(current_, "DESC");
          PROST_RETURN_IF_ERROR(Advance());
          PROST_RETURN_IF_ERROR(ExpectPunct("("));
          if (current_.kind != TokenKind::kVariable) {
            return Error("expected variable in ASC()/DESC()");
          }
          key.variable = current_.text;
          PROST_RETURN_IF_ERROR(Advance());
          PROST_RETURN_IF_ERROR(ExpectPunct(")"));
        } else {
          break;
        }
        query->order_by.push_back(std::move(key));
      }
      if (query->order_by.empty()) {
        return Error("ORDER BY requires at least one key");
      }
    }
    // LIMIT and OFFSET in either order (SPARQL allows both orders).
    for (int round = 0; round < 2; ++round) {
      if (KeywordIs(current_, "LIMIT") && query->limit == 0) {
        PROST_RETURN_IF_ERROR(Advance());
        if (current_.kind != TokenKind::kInteger) {
          return Error("expected integer after LIMIT");
        }
        query->limit = std::strtoull(current_.text.c_str(), nullptr, 10);
        if (query->limit == 0) return Error("LIMIT must be positive");
        PROST_RETURN_IF_ERROR(Advance());
      } else if (KeywordIs(current_, "OFFSET") && query->offset == 0) {
        PROST_RETURN_IF_ERROR(Advance());
        if (current_.kind != TokenKind::kInteger) {
          return Error("expected integer after OFFSET");
        }
        query->offset = std::strtoull(current_.text.c_str(), nullptr, 10);
        PROST_RETURN_IF_ERROR(Advance());
      }
    }
    return Status::OK();
  }

  Lexer lexer_;
  Token current_;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace prost::sparql
