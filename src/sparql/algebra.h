#ifndef PROST_SPARQL_ALGEBRA_H_
#define PROST_SPARQL_ALGEBRA_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace prost::sparql {

/// A triple pattern: subject/predicate/object, each either a concrete term
/// or a variable. The paper's translation (§3.2) requires concrete
/// predicates (as do all four evaluated systems' partitioned layouts); the
/// planner rejects variable predicates with kUnimplemented.
struct TriplePattern {
  rdf::Term subject;
  rdf::Term predicate;
  rdf::Term object;

  /// Variables mentioned by this pattern, in S,O order.
  std::vector<std::string> Variables() const;

  /// True when subject or object is a literal/IRI constant (the strong
  /// selectivity signal of §3.3).
  bool HasConstantSubject() const { return subject.is_concrete(); }
  bool HasConstantObject() const { return object.is_concrete(); }
  bool HasLiteralOrConstant() const {
    return HasConstantSubject() || HasConstantObject();
  }

  std::string ToString() const;

  bool operator==(const TriplePattern& other) const = default;
};

/// A conjunction of triple patterns (the paper restricts itself to queries
/// with a unique basic graph pattern without filters — the WatDiv basic
/// query set).
struct BasicGraphPattern {
  std::vector<TriplePattern> patterns;

  /// All distinct variable names, sorted.
  std::set<std::string> Variables() const;

  /// True when every pair of patterns is transitively connected through
  /// shared variables. Disconnected BGPs would need cross products.
  bool IsConnected() const;
};

/// Comparison operators available in FILTER expressions.
enum class CompareOp : uint8_t {
  kEq,  // =
  kNe,  // !=
  kLt,  // <
  kLe,  // <=
  kGt,  // >
  kGe,  // >=
};

const char* CompareOpToString(CompareOp op);

/// One FILTER constraint: `?var OP constant` or `?var OP ?var`.
/// Comparisons are numeric when both sides are numeric literals, SPARQL
/// operator-mapping style; otherwise `=`/`!=` compare terms and ordering
/// operators compare lexical forms.
struct FilterConstraint {
  std::string variable;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_variable = false;
  std::string rhs_variable;  // When rhs_is_variable.
  rdf::Term rhs_term;        // Otherwise.

  std::string ToString() const;
  bool operator==(const FilterConstraint& other) const = default;
};

/// One ORDER BY key.
struct OrderKey {
  std::string variable;
  bool descending = false;

  bool operator==(const OrderKey& other) const = default;
};

/// A COUNT aggregate in the projection: `SELECT (COUNT(*) AS ?alias)` or
/// `SELECT (COUNT(DISTINCT ?var) AS ?alias)`. When present, it is the
/// whole projection (GROUP BY is not supported).
struct CountAggregate {
  bool distinct = false;
  /// Counted variable; empty means COUNT(*).
  std::string variable;
  std::string alias;

  bool operator==(const CountAggregate& other) const = default;
};

/// A parsed SELECT query.
struct Query {
  /// Projected variable names (without '?'); empty means SELECT *.
  std::vector<std::string> projection;
  bool distinct = false;
  /// 0 means no LIMIT.
  uint64_t limit = 0;
  uint64_t offset = 0;
  BasicGraphPattern bgp;
  std::vector<FilterConstraint> filters;
  std::vector<OrderKey> order_by;
  /// Present for COUNT queries; projection/order_by are then empty.
  std::optional<CountAggregate> count;

  /// The effective projection: explicit list, or all BGP variables
  /// (sorted) for SELECT *.
  std::vector<std::string> EffectiveProjection() const;

  std::string ToString() const;
};

/// Structural validation: non-empty BGP, concrete predicates, projected
/// variables bound in the BGP, connected pattern graph.
Status ValidateQuery(const Query& query);

}  // namespace prost::sparql

#endif  // PROST_SPARQL_ALGEBRA_H_
