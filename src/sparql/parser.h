#ifndef PROST_SPARQL_PARSER_H_
#define PROST_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/algebra.h"

namespace prost::sparql {

/// Parses the SPARQL subset the paper evaluates (WatDiv basic queries):
///
///   PREFIX ns: <iri>                      (any number)
///   SELECT [DISTINCT] (?v ... | *)
///   WHERE { tp . tp . ... }
///   [LIMIT n]
///
/// Triple-pattern terms may be IRIs (`<...>`), prefixed names (`ns:local`),
/// literals (`"v"`, `"v"@lang`, `"v"^^<dt>`, plain integers), variables
/// (`?name`), or the keyword `a` for rdf:type. `#` starts a comment.
/// Predicate-object lists with `;` and object lists with `,` are
/// supported.
Result<Query> ParseQuery(std::string_view text);

}  // namespace prost::sparql

#endif  // PROST_SPARQL_PARSER_H_
