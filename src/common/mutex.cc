#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace prost {

#if PROST_LOCK_RANK_CHECKS

namespace internal {
namespace {

/// Per-thread stack of held ranks. Pushes keep it weakly sorted (every
/// blocking acquire must exceed the current maximum); releases may happen
/// in any order, so RankNoteReleased removes the topmost matching entry
/// rather than insisting on LIFO. Deep enough that overflow means a bug,
/// not a workload.
constexpr int kMaxHeldLocks = 32;
thread_local int tls_held_ranks[kMaxHeldLocks];
thread_local int tls_held_depth = 0;

[[noreturn]] void RankAbort(const char* what, int rank, int held) {
  std::fprintf(stderr,
               "prost: lock-rank violation: %s rank %d while holding rank "
               "%d (see DESIGN.md §11 for the lock hierarchy)\n",
               what, rank, held);
  std::abort();
}

}  // namespace

void RankCheckAcquire(int rank) {
  int max_held = -1;
  for (int i = 0; i < tls_held_depth; ++i) {
    if (tls_held_ranks[i] > max_held) max_held = tls_held_ranks[i];
  }
  if (tls_held_depth > 0 && rank <= max_held) {
    RankAbort("acquiring", rank, max_held);
  }
}

void RankNoteAcquired(int rank) {
  if (tls_held_depth == kMaxHeldLocks) {
    std::fprintf(stderr,
                 "prost: lock-rank checker: thread holds more than %d "
                 "mutexes — almost certainly a leak\n",
                 kMaxHeldLocks);
    std::abort();
  }
  tls_held_ranks[tls_held_depth++] = rank;
}

void RankNoteReleased(int rank) {
  for (int i = tls_held_depth - 1; i >= 0; --i) {
    if (tls_held_ranks[i] != rank) continue;
    for (int j = i; j + 1 < tls_held_depth; ++j) {
      tls_held_ranks[j] = tls_held_ranks[j + 1];
    }
    --tls_held_depth;
    return;
  }
  RankAbort("releasing un-held", rank, -1);
}

int RankHeldDepth() { return tls_held_depth; }

}  // namespace internal

#endif  // PROST_LOCK_RANK_CHECKS

void MutexBase::Lock() {
  internal::RankCheckAcquire(rank_);
  mu_.lock();
  internal::RankNoteAcquired(rank_);
}

void MutexBase::Unlock() {
  internal::RankNoteReleased(rank_);
  mu_.unlock();
}

bool MutexBase::TryLock() {
  // No RankCheckAcquire: a non-blocking probe cannot deadlock. The rank
  // is still recorded so blocking acquires made *while holding* the
  // try-acquired mutex stay checked.
  if (!mu_.try_lock()) return false;
  internal::RankNoteAcquired(rank_);
  return true;
}

void MutexBase::LockForWait() {
  internal::RankCheckAcquire(rank_);
  mu_.lock();
  internal::RankNoteAcquired(rank_);
}

void MutexBase::UnlockForWait() {
  internal::RankNoteReleased(rank_);
  mu_.unlock();
}

namespace internal {

/// BasicLockable shim handed to condition_variable_any: routes the
/// wait-time release/reacquire through the rank bookkeeping without any
/// capability annotations, so the static analysis (correctly) treats the
/// mutex as held across CondVar::Wait from the caller's point of view.
class CondVarWaitAdapter {
 public:
  explicit CondVarWaitAdapter(MutexBase& mu) : mu_(mu) {}
  void lock() { mu_.LockForWait(); }
  void unlock() { mu_.UnlockForWait(); }

 private:
  MutexBase& mu_;
};

}  // namespace internal

void CondVar::Wait(MutexBase& mu) {
  internal::CondVarWaitAdapter adapter(mu);
  // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): Wait *is* the
  // single-wakeup primitive; every caller loops on its predicate (the
  // header bans a lambda-predicate overload on purpose).
  cv_.wait(adapter);
}

}  // namespace prost
