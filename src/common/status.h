#ifndef PROST_COMMON_STATUS_H_
#define PROST_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace prost {

/// Canonical error codes used across the PRoST library.
///
/// The library does not throw exceptions across API boundaries; fallible
/// operations return a `Status` or a `Result<T>` (RocksDB/Arrow idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kCorruption = 8,
  kParseError = 9,
  kResourceExhausted = 10,
  kUnavailable = 11,
  kDeadlineExceeded = 12,
};

/// Returns the canonical lowercase name of a status code ("ok",
/// "invalid_argument", ...). Never fails; unknown codes map to "unknown".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no message
/// allocation). Construct errors through the named factory functions.
///
/// `[[nodiscard]]`: ignoring a returned Status silently swallows errors,
/// so every call site must consume it (check, propagate, or explicitly
/// discard via PROST_IGNORE_ERROR with a reason).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`. Accessing the value of
/// an errored result aborts the process (programming error), so callers
/// must check `ok()` first or use the PROST_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...);`.
  Result(T value) : storage_(std::move(value)) {}        // NOLINT
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    CheckNotOk();
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    CheckHasValue();
    return std::get<T>(storage_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<T>(storage_);
  }
  T&& value() && {
    CheckHasValue();
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!ok()) AbortBadAccess(std::get<Status>(storage_));
  }
  void CheckNotOk() const {
    if (std::holds_alternative<Status>(storage_) &&
        std::get<Status>(storage_).ok()) {
      AbortOkResult();
    }
  }
  [[noreturn]] static void AbortBadAccess(const Status& status);
  [[noreturn]] static void AbortOkResult();

  std::variant<T, Status> storage_;
};

namespace internal_status {
[[noreturn]] void AbortWithMessage(const std::string& message);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortBadAccess(const Status& status) {
  internal_status::AbortWithMessage(
      "Result::value() called on error result: " + status.ToString());
}

template <typename T>
void Result<T>::AbortOkResult() {
  internal_status::AbortWithMessage(
      "Result constructed from OK status without a value");
}

}  // namespace prost

/// Explicitly discards a Status (or Result) when failure is genuinely
/// acceptable at the call site. The macro exists so intentional discards
/// survive `[[nodiscard]]` enforcement while staying greppable.
#define PROST_IGNORE_ERROR(expr) \
  do {                           \
    (void)(expr);                \
  } while (false)

/// Propagates a non-OK Status from the current function.
#define PROST_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::prost::Status prost_status_tmp_ = (expr);     \
    if (!prost_status_tmp_.ok()) {                  \
      return prost_status_tmp_;                     \
    }                                               \
  } while (false)

#define PROST_CONCAT_IMPL_(a, b) a##b
#define PROST_CONCAT_(a, b) PROST_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error propagates the Status, on
/// success assigns the value to `lhs`.
#define PROST_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  PROST_ASSIGN_OR_RETURN_IMPL_(PROST_CONCAT_(prost_result_, __LINE__), \
                               lhs, rexpr)

#define PROST_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) {                                    \
    return result.status();                              \
  }                                                      \
  lhs = std::move(result).value()

#endif  // PROST_COMMON_STATUS_H_
