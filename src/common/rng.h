#ifndef PROST_COMMON_RNG_H_
#define PROST_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prost {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All randomness in the library flows through this type so
/// that data generation, partitioning, and benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Samples from a Zipf distribution over {0, 1, ..., n-1} with skew `s`
/// using the rejection-inversion method of Hörmann (as used by YCSB-style
/// generators). Rank 0 is the most popular item. WatDiv-style RDF data has
/// power-law in/out degree distributions; this is the sampler behind them.
class ZipfGenerator {
 public:
  /// `n` must be >= 1; `s` (skew) must be > 0. s values near 0 approach
  /// uniform; WatDiv-like workloads use s in [0.5, 1.5].
  ZipfGenerator(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_num_items_;
  double scale_;
};

}  // namespace prost

#endif  // PROST_COMMON_RNG_H_
