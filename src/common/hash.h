#ifndef PROST_COMMON_HASH_H_
#define PROST_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace prost {

/// 64-bit avalanche mix (the MurmurHash3 finalizer). Good distribution for
/// hash-partitioning dictionary-encoded term ids across workers.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// 64-bit FNV-1a over a byte string. Used for dictionary buckets and for
/// content checksums in the columnar file format.
uint64_t HashBytes(std::string_view bytes);

/// Combines two 64-bit hashes (boost::hash_combine style, widened).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (Mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace prost

#endif  // PROST_COMMON_HASH_H_
