#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace prost {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    // vsnprintf writes the terminating NUL into the buffer; C++11 strings
    // guarantee data()[size()] is addressable for writing '\0'.
    std::vsnprintf(out.data(), static_cast<size_t>(size) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StrTrim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && (input[begin] == ' ' || input[begin] == '\t' ||
                         input[begin] == '\r' || input[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (input[end - 1] == ' ' || input[end - 1] == '\t' ||
                         input[end - 1] == '\r' || input[end - 1] == '\n')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

std::string HumanDuration(double millis) {
  if (millis < 10000.0) {
    return WithThousands(static_cast<uint64_t>(millis + 0.5)) + "ms";
  }
  uint64_t total_seconds = static_cast<uint64_t>(millis / 1000.0 + 0.5);
  uint64_t hours = total_seconds / 3600;
  uint64_t minutes = (total_seconds % 3600) / 60;
  uint64_t seconds = total_seconds % 60;
  if (hours > 0) {
    return StrFormat("%lluh %llum %llus", static_cast<unsigned long long>(hours),
                     static_cast<unsigned long long>(minutes),
                     static_cast<unsigned long long>(seconds));
  }
  return StrFormat("%llum %llus", static_cast<unsigned long long>(minutes),
                   static_cast<unsigned long long>(seconds));
}

std::string WithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace prost
