#include "common/io.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/str_util.h"

namespace prost {

namespace fs = std::filesystem;

void ByteWriter::PutU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  buffer_.append(bytes, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  buffer_.append(bytes, 8);
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buffer_.append(s.data(), s.size());
}

void ByteWriter::PutRaw(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status ByteReader::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteReader::GetDouble(double* out) {
  uint64_t bits;
  PROST_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t size;
  PROST_RETURN_IF_ERROR(GetVarint(&size));
  if (remaining() < size) return Status::Corruption("truncated string");
  out->assign(data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status ByteReader::GetRaw(void* out, size_t size) {
  if (remaining() < size) return Status::Corruption("truncated raw bytes");
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status ByteReader::Skip(size_t size) {
  if (remaining() < size) return Status::Corruption("skip past end");
  pos_ += size;
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for read: " + path);
  file.seekg(0, std::ios::end);
  std::streamoff size = file.tellg();
  file.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  file.read(out->data(), size);
  if (!file) return Status::IOError("short read: " + path);
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open for write: " + path);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size failed: " + path);
  return size;
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories failed: " + path);
  return Status::OK();
}

Status RemoveAllRecursively(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all failed: " + path);
  return Status::OK();
}

Result<uint64_t> DirectorySize(const std::string& path) {
  std::error_code ec;
  uint64_t total = 0;
  if (!fs::exists(path, ec)) return total;
  for (auto it = fs::recursive_directory_iterator(path, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      total += it->file_size(ec);
    }
  }
  if (ec) return Status::IOError("directory walk failed: " + path);
  return total;
}

}  // namespace prost
