#include "common/rng.h"

#include <cmath>

namespace prost {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection on the tail.
  uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n < 1 ? 1 : n), s_(s) {
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_items_ = H(static_cast<double>(n_) + 0.5);
  scale_ = h_integral_num_items_ - H(0.5);
}

double ZipfGenerator::H(double x) const {
  // Integral of 1/x^s: log(x) for s == 1, else x^(1-s)/(1-s).
  if (std::fabs(s_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfGenerator::HInverse(double x) const {
  if (std::fabs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    double u = H(0.5) + rng.NextDouble() * scale_;
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    // Accept with the rejection-inversion criterion; acceptance rate is
    // high for all skews of interest, so this loop terminates quickly.
    double h_k = std::pow(static_cast<double>(k), -s_);
    double h_int = H(static_cast<double>(k) + 0.5) -
                   H(static_cast<double>(k) - 0.5);
    if (rng.NextDouble() * h_int <= h_k) {
      return k - 1;  // Ranks are 0-based for callers.
    }
  }
}

}  // namespace prost
