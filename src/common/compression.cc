#include "common/compression.h"

#include <zlib.h>

namespace prost {

Result<std::string> DeflateCompress(std::string_view input) {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  std::string out;
  out.resize(bound);
  int rc = compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                     reinterpret_cast<const Bytef*>(input.data()),
                     static_cast<uLong>(input.size()), Z_DEFAULT_COMPRESSION);
  if (rc != Z_OK) {
    return Status::Internal("zlib compress failed: " + std::to_string(rc));
  }
  out.resize(bound);
  return out;
}

Result<std::string> DeflateDecompress(std::string_view input,
                                      size_t expected_size) {
  size_t capacity = expected_size > 0 ? expected_size : input.size() * 4 + 64;
  std::string out;
  while (true) {
    out.resize(capacity);
    uLongf dest_len = static_cast<uLongf>(capacity);
    int rc = uncompress(reinterpret_cast<Bytef*>(out.data()), &dest_len,
                        reinterpret_cast<const Bytef*>(input.data()),
                        static_cast<uLong>(input.size()));
    if (rc == Z_OK) {
      out.resize(dest_len);
      return out;
    }
    if (rc == Z_BUF_ERROR && capacity < (1ull << 34)) {
      capacity *= 2;
      continue;
    }
    return Status::Corruption("zlib uncompress failed: " +
                              std::to_string(rc));
  }
}

}  // namespace prost
