#ifndef PROST_COMMON_TIMER_H_
#define PROST_COMMON_TIMER_H_

#include <chrono>

namespace prost {

/// Wall-clock stopwatch for measuring real elapsed time (loading phases,
/// benchmark harness overhead). Simulated cluster time lives in
/// cluster/cost_model.h, not here.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: adds the scope's elapsed wall milliseconds to `*sink`
/// on destruction. Deduplicates the start/stop/accumulate boilerplate in
/// benchmark loops and span instrumentation.
///
///   double millis = 0;
///   { ScopedTimer t(&millis); work(); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink_millis) : sink_(sink_millis) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += timer_.ElapsedMillis();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Detaches and reports early; the destructor becomes a no-op.
  double StopMillis() {
    double elapsed = timer_.ElapsedMillis();
    if (sink_ != nullptr) *sink_ += elapsed;
    sink_ = nullptr;
    return elapsed;
  }

 private:
  WallTimer timer_;
  double* sink_;
};

}  // namespace prost

#endif  // PROST_COMMON_TIMER_H_
