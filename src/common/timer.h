#ifndef PROST_COMMON_TIMER_H_
#define PROST_COMMON_TIMER_H_

#include <chrono>

namespace prost {

/// Wall-clock stopwatch for measuring real elapsed time (loading phases,
/// benchmark harness overhead). Simulated cluster time lives in
/// cluster/cost_model.h, not here.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prost

#endif  // PROST_COMMON_TIMER_H_
