#ifndef PROST_COMMON_LOGGING_H_
#define PROST_COMMON_LOGGING_H_

#include <string>

namespace prost {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Minimum level that is emitted; defaults to kWarning so that library
/// internals stay quiet under tests. Benches and examples raise verbosity
/// explicitly.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `message` to stderr if `level` passes the configured threshold.
void LogMessage(LogLevel level, const std::string& message);

}  // namespace prost

#define PROST_LOG(level, ...)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::prost::GetLogLevel())) {                 \
      ::prost::LogMessage(level, ::prost::StrFormat(__VA_ARGS__));  \
    }                                                               \
  } while (false)

#define PROST_DEBUG(...) PROST_LOG(::prost::LogLevel::kDebug, __VA_ARGS__)
#define PROST_INFO(...) PROST_LOG(::prost::LogLevel::kInfo, __VA_ARGS__)
#define PROST_WARN(...) PROST_LOG(::prost::LogLevel::kWarning, __VA_ARGS__)
#define PROST_ERROR(...) PROST_LOG(::prost::LogLevel::kError, __VA_ARGS__)

#endif  // PROST_COMMON_LOGGING_H_
