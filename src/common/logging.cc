#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace prost {
namespace {

// Relaxed ordering throughout (DESIGN.md §11 atomics inventory): the
// level is a single word with no dependent state, so a racing
// SetLogLevel may drop or admit one in-flight message but can never
// corrupt anything.
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[prost %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace prost
