#ifndef PROST_COMMON_STR_UTIL_H_
#define PROST_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prost {

/// printf-style formatting into a std::string. Used instead of std::format,
/// which is unavailable in the toolchain this project targets (GCC 12).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// True if `input` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view input, std::string_view prefix);
bool EndsWith(std::string_view input, std::string_view suffix);

/// Formats a byte count as a human-readable string ("2.1 GB", "532 KB").
std::string HumanBytes(uint64_t bytes);

/// Formats milliseconds as a human-readable duration ("3h 11m 44s",
/// "25m 32s", "1,195ms").
std::string HumanDuration(double millis);

/// Formats an integer with thousands separators ("2,195,322").
std::string WithThousands(uint64_t value);

}  // namespace prost

#endif  // PROST_COMMON_STR_UTIL_H_
