#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace prost {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void AbortWithMessage(const std::string& message) {
  std::fprintf(stderr, "[prost fatal] %s\n", message.c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace prost
