#ifndef PROST_COMMON_MUTEX_H_
#define PROST_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

/// The annotated locking layer. Every mutex and condition variable in the
/// codebase lives on these wrappers (tools/lint.py `raw-concurrency`
/// forbids the std primitives anywhere else), which buys two checkers:
///
///  * static  — the PROST_* capability attributes make Clang's
///    `-Wthread-safety` analysis prove that every PROST_GUARDED_BY field
///    is only touched under its mutex (PROST_THREAD_SAFETY CMake option;
///    negative-compile proof in tests/thread_safety/);
///  * dynamic — each Mutex carries a compile-time LockRank, and debug /
///    paranoid builds keep a per-thread stack of held ranks, aborting the
///    moment any thread acquires out of rank order. Ranks totally order
///    the lock hierarchy, so a clean run proves deadlock-freedom for the
///    orders actually executed; see DESIGN.md §11 for the hierarchy.

// The runtime lock-rank checker rides in debug and sanitizer builds
// (sanitizer builds define PROST_PARANOID_CHECKS, so the TSan CI leg
// runs the dynamic rank checker and TSan together); release builds pay
// nothing.
#if !defined(NDEBUG) || defined(PROST_PARANOID_CHECKS)
#define PROST_LOCK_RANK_CHECKS 1
#endif

namespace prost {

/// The global lock hierarchy: a thread may only acquire a mutex whose
/// rank is *strictly greater* than every rank it already holds, so any
/// cross-thread acquisition cycle is impossible. Gaps leave room for new
/// subsystems. One rank per mutex *role* — two same-rank mutexes must
/// never nest (the checker enforces this too, which catches self-deadlock
/// on a single mutex).
enum class LockRank : int {
  /// net::Server::mu_ — the network front end's lifecycle state, pending
  /// accepted-connection queue, and handler bookkeeping. Outermost of
  /// all: a connection handler holding nothing else calls down into
  /// serve::SessionManager (kServeSession), so the net rank sits below
  /// every other rank in the hierarchy. Never held across a request
  /// execution or a socket write.
  kNetServer = 50,
  /// serve::SessionManager::mu_ — admission control (in-flight count,
  /// queue tickets, lifecycle state). Outermost below the net front end,
  /// and held only around state transitions — never across a query
  /// execution — so the serve layer adds queueing without ever stacking
  /// under the engine's locks.
  kServeSession = 100,
  /// ThreadPool::mu_ — the open-region list and shutdown flag.
  kThreadPoolControl = 300,
  /// ThreadPool::Region::mu — one region's completion latch (the
  /// done flag its caller quiesces on). Never nested with
  /// kThreadPoolControl in either order; ranked above it so the latch
  /// could legally be taken under control if that ever changed.
  kThreadPoolRegion = 400,
  /// columnar::BufferPool::mu_ — frame map, LRU state, resident-byte
  /// accounting. Acquired by scan workers inside parallel regions (hence
  /// above kThreadPoolRegion) and never held across a chunk decode (the
  /// pool drops it around decoding, see BufferPool::Pin), so nothing
  /// below it is ever requested while it is held; metric updates from
  /// pool paths go through lock-free counter handles, not the registry
  /// mutex, but kMetricsRegistry stays legally acquirable above.
  kBufferPool = 450,
  /// obs::MetricsRegistry::mu_ — metric registration/snapshot. A leaf in
  /// practice (registries never call out while locked); ranked above the
  /// pool so load-time metric updates from inside parallel regions would
  /// still be legal.
  kMetricsRegistry = 500,
  /// Strictly-leaf mutexes: never held while acquiring anything else.
  kLeaf = 1000,
};

namespace internal {

#if PROST_LOCK_RANK_CHECKS
/// Aborts (with a diagnostic on stderr) if acquiring `rank` now would
/// violate the hierarchy; called *before* blocking so the abort fires
/// instead of the deadlock.
void RankCheckAcquire(int rank);
/// Pushes `rank` onto the calling thread's held stack.
void RankNoteAcquired(int rank);
/// Removes `rank` from the held stack (unlock order need not be LIFO);
/// aborts if the thread does not hold a mutex of that rank.
void RankNoteReleased(int rank);
/// Test hook: current depth of the calling thread's held-rank stack.
int RankHeldDepth();
#else
inline void RankCheckAcquire(int) {}
inline void RankNoteAcquired(int) {}
inline void RankNoteReleased(int) {}
inline int RankHeldDepth() { return 0; }
#endif

class CondVarWaitAdapter;

}  // namespace internal

/// Rank-erased annotated mutex. Use the `Mutex<LockRank>` template below
/// for members; MutexBase exists so MutexLock and CondVar work across
/// ranks. Non-recursive, non-copyable.
class PROST_CAPABILITY("mutex") MutexBase {
 public:
  MutexBase(const MutexBase&) = delete;
  MutexBase& operator=(const MutexBase&) = delete;

  /// Blocks until the mutex is held. Aborts in checked builds if the
  /// calling thread already holds a mutex of equal or greater rank.
  void Lock() PROST_ACQUIRE();

  void Unlock() PROST_RELEASE();

  /// Non-blocking acquire. Exempt from the rank-order *abort* (a try
  /// can't deadlock), but a successful TryLock still pushes its rank, so
  /// later blocking acquires are checked against it.
  bool TryLock() PROST_TRY_ACQUIRE(true);

  int rank() const { return rank_; }

 protected:
  explicit MutexBase(int rank) : rank_(rank) {}
  ~MutexBase() = default;

 private:
  friend class internal::CondVarWaitAdapter;

  /// Unannotated acquire/release for CondVar's wait, which releases and
  /// reacquires mid-scope where the static analysis still considers the
  /// mutex held (the REQUIRES contract on Wait stays true at entry and
  /// exit). Rank bookkeeping is identical to Lock/Unlock.
  void LockForWait();
  void UnlockForWait();

  std::mutex mu_;
  const int rank_;
};

/// An annotated mutex with its hierarchy position fixed at compile time:
///
///   Mutex<LockRank::kThreadPoolControl> mu_;
///   uint64_t generation_ PROST_GUARDED_BY(mu_) = 0;
template <LockRank kRank>
class PROST_CAPABILITY("mutex") Mutex final : public MutexBase {
 public:
  static constexpr LockRank kLockRank = kRank;
  Mutex() : MutexBase(static_cast<int>(kRank)) {}
};

/// RAII lock, scoped-capability annotated. Unlock()/Lock() support the
/// worker-loop pattern of dropping the lock around a callback.
class PROST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(MutexBase& mu) PROST_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() PROST_RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (the destructor then does nothing).
  void Unlock() PROST_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Reacquires after Unlock().
  void Lock() PROST_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  MutexBase& mu_;
  bool held_ = true;
};

/// Condition variable bound to MutexBase. Wait releases the mutex while
/// blocked and reacquires before returning (rank bookkeeping included),
/// like std::condition_variable — but the static analysis sees the mutex
/// as continuously held across Wait, which matches what callers may
/// assume about their PROST_GUARDED_BY state at every *observable* point.
/// Spurious wakeups happen: always wait in a predicate loop (or use the
/// predicate overload).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wait, spurious wakeups included; callers loop on their
  /// predicate (a lambda-predicate overload would defeat the static
  /// analysis: lambda bodies are analyzed as unannotated functions, so
  /// reading guarded state inside one is a thread-safety error — the
  /// explicit `while (!pred) cv.Wait(mu);` form keeps the guarded reads
  /// in the annotated caller).
  void Wait(MutexBase& mu) PROST_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace prost

#endif  // PROST_COMMON_MUTEX_H_
