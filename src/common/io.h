#ifndef PROST_COMMON_IO_H_
#define PROST_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace prost {

/// Appends binary little-endian primitives and length-prefixed strings to
/// an owned buffer. The columnar file format and the KV store's sorted
/// runs are serialized through this writer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  /// LEB128 variable-length encoding; small values take one byte.
  void PutVarint(uint64_t v);
  /// Varint length prefix followed by raw bytes.
  void PutString(std::string_view s);
  void PutRaw(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Reads primitives written by ByteWriter. All getters return
/// Status::Corruption on truncated input rather than reading out of
/// bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetDouble(double* out);
  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);
  Status GetRaw(void* out, size_t size);
  Status Skip(size_t size);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Reads an entire file into `out`.
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Returns the size in bytes of the file at `path`, or an error.
Result<uint64_t> FileSize(const std::string& path);

/// Creates `path` and any missing parents (mkdir -p semantics).
Status MakeDirectories(const std::string& path);

/// Recursively removes `path` if it exists. Used by tests and benches to
/// reset scratch database directories.
Status RemoveAllRecursively(const std::string& path);

/// Total size in bytes of all regular files under `path` (recursively).
Result<uint64_t> DirectorySize(const std::string& path);

}  // namespace prost

#endif  // PROST_COMMON_IO_H_
