#ifndef PROST_COMMON_COMPRESSION_H_
#define PROST_COMMON_COMPRESSION_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace prost {

/// Deflate-compresses `input` (zlib, default level). Stand-in for the
/// codecs the real systems apply to their storage: SPARQLGX's compressed
/// HDFS text files and Accumulo's compressed RFiles.
Result<std::string> DeflateCompress(std::string_view input);

/// Inverse of DeflateCompress. `expected_size` hint (0 = unknown) sizes
/// the output buffer.
Result<std::string> DeflateDecompress(std::string_view input,
                                      size_t expected_size = 0);

}  // namespace prost

#endif  // PROST_COMMON_COMPRESSION_H_
