#ifndef PROST_COMMON_THREAD_POOL_H_
#define PROST_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace prost {

/// Work-stealing thread pool behind the morsel-driven parallel operators.
///
/// The pool owns `num_threads - 1` OS threads; the caller of ParallelFor
/// participates as the remaining worker, so `num_threads` is the total
/// parallelism. Tasks are dense indices: ParallelFor splits [0, num_tasks)
/// into contiguous shards, one deque per participant. A participant pops
/// from the front of its own shard (ascending indices, cache-friendly for
/// morsels over adjacent rows) and steals from the *back* of the first
/// non-empty victim once its own shard runs dry, so stragglers shed their
/// coldest work first.
///
/// Scheduling never affects results: tasks are index-addressed, write to
/// caller-provided slots, and the caller merges slots in index order —
/// that merge order is the determinism contract of every parallel
/// operator built on top.
///
/// ParallelFor is synchronous and not reentrant: one parallel region at a
/// time per pool, and task bodies must not call back into the pool.
///
/// Locking (DESIGN.md §11): `mu_` (rank kThreadPoolControl) covers region
/// control — generation handoff, shutdown, the region's `fn_`, and the
/// active-worker count; each Shard's `mu` (rank kThreadPoolShard, below
/// control in the hierarchy so seeding a region may hold both) covers
/// that shard's deque. `remaining_` is the only lock-free cross-thread
/// state; its ordering contract is documented at the field.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers. `num_threads == 1` (or 0) spawns
  /// nothing; ParallelFor then runs inline on the caller.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn(i) exactly once for every i in [0, num_tasks), distributing
  /// across all participants with stealing. Blocks until every task has
  /// finished. `fn` must be safe to call concurrently from different
  /// threads on different indices and must not throw.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  /// One participant's shard of the current region's task indices.
  struct Shard {
    Mutex<LockRank::kThreadPoolShard> mu;
    std::deque<size_t> tasks PROST_GUARDED_BY(mu);
  };

  void WorkerLoop(uint32_t participant);
  /// Drains tasks (own shard first, then stealing) until none are left.
  void RunParticipant(uint32_t participant,
                      const std::function<void(size_t)>& fn);
  bool NextTask(uint32_t participant, size_t* task);

  const uint32_t num_threads_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  Mutex<LockRank::kThreadPoolControl> mu_;
  CondVar work_cv_;  // Workers wait here between regions.
  CondVar done_cv_;  // ParallelFor waits here for quiesce.
  /// Bumped once per region; workers compare against their last-seen
  /// value to detect new work.
  uint64_t generation_ PROST_GUARDED_BY(mu_) = 0;
  bool shutdown_ PROST_GUARDED_BY(mu_) = false;
  /// Current region's fn; null between regions. A worker that wakes
  /// after the caller already drained a small region sees null and
  /// re-waits (the retired-region case).
  const std::function<void(size_t)>* fn_ PROST_GUARDED_BY(mu_) = nullptr;
  /// Tasks not yet completed. Ordering contract: the relaxed seeding
  /// store in ParallelFor is published to workers by the mu_
  /// release/acquire on the generation bump; each completion decrements
  /// with acq_rel, so the decrements form a release sequence and the
  /// caller's acquire load that observes 0 happens-after every task
  /// body's writes (the caller reads task output slots lock-free right
  /// after its quiesce wait).
  std::atomic<size_t> remaining_{0};
  /// Pool threads currently inside RunParticipant; the quiesce wait
  /// needs it because a worker can still be probing (empty) shards after
  /// remaining_ hits zero.
  uint32_t active_workers_ PROST_GUARDED_BY(mu_) = 0;
};

}  // namespace prost

#endif  // PROST_COMMON_THREAD_POOL_H_
