#ifndef PROST_COMMON_THREAD_POOL_H_
#define PROST_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prost {

/// Work-stealing thread pool behind the morsel-driven parallel operators.
///
/// The pool owns `num_threads - 1` OS threads; the caller of ParallelFor
/// participates as the remaining worker, so `num_threads` is the total
/// parallelism. Tasks are dense indices: ParallelFor splits [0, num_tasks)
/// into contiguous shards, one deque per participant. A participant pops
/// from the front of its own shard (ascending indices, cache-friendly for
/// morsels over adjacent rows) and steals from the *back* of the first
/// non-empty victim once its own shard runs dry, so stragglers shed their
/// coldest work first.
///
/// Scheduling never affects results: tasks are index-addressed, write to
/// caller-provided slots, and the caller merges slots in index order —
/// that merge order is the determinism contract of every parallel
/// operator built on top.
///
/// ParallelFor is synchronous and not reentrant: one parallel region at a
/// time per pool, and task bodies must not call back into the pool.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers. `num_threads == 1` (or 0) spawns
  /// nothing; ParallelFor then runs inline on the caller.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn(i) exactly once for every i in [0, num_tasks), distributing
  /// across all participants with stealing. Blocks until every task has
  /// finished. `fn` must be safe to call concurrently from different
  /// threads on different indices and must not throw.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  /// One participant's shard of the current region's task indices.
  struct Shard {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  void WorkerLoop(uint32_t participant);
  /// Drains tasks (own shard first, then stealing) until none are left.
  void RunParticipant(uint32_t participant,
                      const std::function<void(size_t)>& fn);
  bool NextTask(uint32_t participant, size_t* task);

  const uint32_t num_threads_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here between regions.
  std::condition_variable done_cv_;  // ParallelFor waits here for quiesce.
  uint64_t generation_ = 0;          // Bumped per region, under mu_.
  bool shutdown_ = false;
  const std::function<void(size_t)>* fn_ = nullptr;  // Current region's fn.
  std::atomic<size_t> remaining_{0};  // Tasks not yet completed.
  uint32_t active_workers_ = 0;       // Pool threads inside RunParticipant.
};

}  // namespace prost

#endif  // PROST_COMMON_THREAD_POOL_H_
