#ifndef PROST_COMMON_THREAD_POOL_H_
#define PROST_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace prost {

/// Work-sharing thread pool behind the morsel-driven parallel operators.
///
/// The pool owns `num_threads - 1` OS threads; the caller of ParallelFor
/// participates as one more worker, so `num_threads` is the parallelism a
/// single region can reach. Tasks are dense indices: each ParallelFor
/// opens a *region* — a tagged claim counter over [0, num_tasks) — and
/// every participant claims ascending indices from it with one atomic
/// fetch-add per task (morsels are coarse, so per-task claim cost is
/// noise, and ascending claims keep adjacent rows on the same thread in
/// the common case).
///
/// Unlike the original single-region design (one generation-stamped
/// region at a time, callers serialized), any number of regions may be
/// open concurrently: each caller's ParallelFor is still synchronous and
/// returns only after its own region quiesces, but regions from
/// different callers — in practice, different queries — share the pool's
/// workers. Idle workers pick an unfinished region round-robin, drain it
/// until its claims run out, then move to the next, so one long query
/// cannot starve the others of workers and a lone region still gets them
/// all. This is what lets ProstDb::Execute run M queries concurrently on
/// one pool (DESIGN.md §12).
///
/// Scheduling never affects results: tasks are index-addressed, write to
/// caller-provided slots, and the caller merges slots in index order —
/// that merge order is the determinism contract of every parallel
/// operator built on top, and it is untouched by which thread ran which
/// index.
///
/// ParallelFor is synchronous and not reentrant *per thread*: distinct
/// threads may each be inside their own ParallelFor, but a task body
/// must not call back into the pool.
///
/// Locking (DESIGN.md §11): `mu_` (rank kThreadPoolControl) covers the
/// open-region list and shutdown; each Region's `mu` (rank
/// kThreadPoolRegion, above control so nothing ever holds both — they
/// are in fact never nested) covers only that region's completion latch.
/// Claim and completion counters are lock-free; their ordering contracts
/// are documented at the fields.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers. `num_threads == 1` (or 0) spawns
  /// nothing; ParallelFor then runs inline on the caller.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn(i) exactly once for every i in [0, num_tasks), distributing
  /// across the caller and any workers not busy with other regions.
  /// Blocks until every task has finished. `fn` must be safe to call
  /// concurrently from different threads on different indices and must
  /// not throw. Safe to call from any number of threads concurrently;
  /// each call is an independent region.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  /// One open parallel region: a claim counter over its task indices
  /// plus a completion latch. Heap-held via shared_ptr so a worker that
  /// picked the region just as it drained can still probe it after the
  /// caller returned and dropped it from the open list.
  struct Region {
    Region(size_t num_tasks_in, const std::function<void(size_t)>& fn_in,
           uint64_t tag_in)
        : num_tasks(num_tasks_in), fn(&fn_in), tag(tag_in) {}

    const size_t num_tasks;
    /// Caller-owned. Only dereferenced after a successful claim
    /// (claimed index < num_tasks): such a task is not yet counted in
    /// `completed`, so the owning ParallelFor cannot have returned and
    /// the function is alive.
    const std::function<void(size_t)>* const fn;
    /// Region id, unique per pool lifetime. Tags the region for the
    /// round-robin pick (and for debugging which query a region belongs
    /// to: ids are handed out in open order).
    const uint64_t tag;

    /// Next unclaimed task index. Claims are relaxed fetch-adds — the
    /// value only partitions indices between threads; publication of
    /// the region itself happens via the mu_ handoff when the region is
    /// added to the open list.
    std::atomic<size_t> next{0};
    /// Tasks whose fn(i) has returned. Each completion is an acq_rel
    /// fetch-add, so the increments form a release sequence and any
    /// thread that observes `completed == num_tasks` with an acquire
    /// load happens-after every task body's writes (the caller reads
    /// task output slots lock-free right after its quiesce wait).
    std::atomic<size_t> completed{0};

    /// Completion latch: the participant that completes the final task
    /// sets `done` and notifies; the caller waits here. Never held
    /// together with the pool's mu_.
    Mutex<LockRank::kThreadPoolRegion> mu;
    CondVar done_cv;
    bool done PROST_GUARDED_BY(mu) = false;
  };

  void WorkerLoop();
  /// Claims and runs tasks from `region` until its claims are
  /// exhausted; flips the completion latch if this participant finished
  /// the last one.
  void Participate(Region& region);
  /// Picks the next open region with unclaimed work, round-robin from
  /// rr_cursor_, or null if none. Called under mu_.
  std::shared_ptr<Region> PickRegion() PROST_REQUIRES(mu_);

  const uint32_t num_threads_;
  std::vector<std::thread> threads_;

  Mutex<LockRank::kThreadPoolControl> mu_;
  CondVar work_cv_;  // Workers wait here when no region has work.
  bool shutdown_ PROST_GUARDED_BY(mu_) = false;
  /// Regions that may still have unclaimed tasks. A region is pushed by
  /// its ParallelFor, and removed either by the worker that observes
  /// its claims exhausted or by its caller on the way out (whichever
  /// comes first; removal is idempotent).
  std::vector<std::shared_ptr<Region>> open_regions_ PROST_GUARDED_BY(mu_);
  uint64_t next_tag_ PROST_GUARDED_BY(mu_) = 0;
  /// Round-robin start offset so concurrent regions share workers
  /// instead of all workers piling onto the oldest region.
  size_t rr_cursor_ PROST_GUARDED_BY(mu_) = 0;
};

}  // namespace prost

#endif  // PROST_COMMON_THREAD_POOL_H_
