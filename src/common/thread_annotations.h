#ifndef PROST_COMMON_THREAD_ANNOTATIONS_H_
#define PROST_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes, spelled as PROST_* macros so
/// every other compiler sees clean no-ops. Annotating a field with
/// PROST_GUARDED_BY(mu) or a function with PROST_REQUIRES(mu) turns an
/// unlocked access into a compile error under
/// `-Wthread-safety -Werror=thread-safety` (the PROST_THREAD_SAFETY CMake
/// option and the "Clang thread-safety" CI leg); see DESIGN.md §11 for
/// the system-wide locking model these annotations encode.
///
/// Only `prost::Mutex` / `prost::MutexLock` (common/mutex.h) carry the
/// capability attributes — raw std::mutex is banned outside that header
/// by the tools/lint.py `raw-concurrency` rule — so the analysis sees
/// every lock and unlock in the program.

#if defined(__clang__) && defined(__has_attribute)
#define PROST_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PROST_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex" names the kind
/// in diagnostics).
#define PROST_CAPABILITY(x) PROST_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define PROST_SCOPED_CAPABILITY PROST_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be read or written while holding `x`.
#define PROST_GUARDED_BY(x) PROST_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define PROST_PT_GUARDED_BY(x) PROST_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define PROST_REQUIRES(...) \
  PROST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function may not be called while holding the capability (anti-deadlock
/// complement of PROST_REQUIRES; the runtime lock-rank checker is the
/// dynamic version of the same contract).
#define PROST_EXCLUDES(...) \
  PROST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry). With no
/// argument the capability is `this`.
#define PROST_ACQUIRE(...) \
  PROST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define PROST_RELEASE(...) \
  PROST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define PROST_TRY_ACQUIRE(b, ...) \
  PROST_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define PROST_RETURN_CAPABILITY(x) \
  PROST_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the calling thread holds the capability
/// (informs the static analysis without acquiring).
#define PROST_ASSERT_CAPABILITY(x) \
  PROST_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables analysis of one function body. Every use must
/// carry a comment explaining why the invariant holds anyway.
#define PROST_NO_THREAD_SAFETY_ANALYSIS \
  PROST_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PROST_COMMON_THREAD_ANNOTATIONS_H_
