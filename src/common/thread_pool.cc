#include "common/thread_pool.h"

namespace prost {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  shards_.reserve(num_threads_);
  for (uint32_t p = 0; p < num_threads_; ++p) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(num_threads_ - 1);
  for (uint32_t p = 1; p < num_threads_; ++p) {
    threads_.emplace_back([this, p] { WorkerLoop(p); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mu_);
    // The previous region fully quiesced before its ParallelFor
    // returned, so the shard locks below are uncontended; they are taken
    // anyway because the deques are guarded state (control rank < shard
    // rank, so holding both here is in hierarchy order). Contiguous
    // blocks: participant 0 (the caller) gets the lowest indices.
    size_t block = (num_tasks + num_threads_ - 1) / num_threads_;
    for (uint32_t p = 0; p < num_threads_; ++p) {
      size_t begin = p * block;
      size_t end = begin + block < num_tasks ? begin + block : num_tasks;
      Shard& shard = *shards_[p];
      MutexLock shard_lock(shard.mu);
      shard.tasks.clear();
      for (size_t i = begin; i < end; ++i) shard.tasks.push_back(i);
    }
    fn_ = &fn;
    // Relaxed is enough: workers only observe the region (and thus this
    // store) after the mu_ handoff on the generation bump below.
    remaining_.store(num_tasks, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.NotifyAll();
  RunParticipant(0, fn);
  MutexLock lock(mu_);
  // Quiesce: every task done *and* every worker out of RunParticipant
  // (a worker may still be probing empty shards after the last task).
  // The acquire load pairs with the acq_rel decrements in RunParticipant
  // so task-body writes are visible once this reads zero.
  while (remaining_.load(std::memory_order_acquire) != 0 ||
         active_workers_ != 0) {
    done_cv_.Wait(mu_);
  }
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop(uint32_t participant) {
  uint64_t seen_generation = 0;
  MutexLock lock(mu_);
  for (;;) {
    while (!shutdown_ && generation_ == seen_generation) {
      work_cv_.Wait(mu_);
    }
    if (shutdown_) return;
    seen_generation = generation_;
    if (fn_ == nullptr) {
      // The caller drained every task and retired this region before we
      // woke (possible whenever num_tasks is small): nothing to run, and
      // dereferencing fn_ would be use-after-clear. Re-wait for the next
      // generation.
      continue;
    }
    const std::function<void(size_t)>& fn = *fn_;
    ++active_workers_;
    lock.Unlock();
    RunParticipant(participant, fn);
    lock.Lock();
    if (--active_workers_ == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::RunParticipant(uint32_t participant,
                                const std::function<void(size_t)>& fn) {
  size_t task = 0;
  while (NextTask(participant, &task)) {
    fn(task);
    // acq_rel: the release half publishes this task's writes to the
    // caller's acquire load in ParallelFor; the acquire half keeps the
    // decrements themselves totally ordered (release sequence).
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task overall: wake the caller (it may be waiting already).
      MutexLock lock(mu_);
      done_cv_.NotifyAll();
    }
  }
}

bool ThreadPool::NextTask(uint32_t participant, size_t* task) {
  Shard& own = *shards_[participant];
  {
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      *task = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  for (uint32_t offset = 1; offset < num_threads_; ++offset) {
    Shard& victim = *shards_[(participant + offset) % num_threads_];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

}  // namespace prost
