#include "common/thread_pool.h"

#include <algorithm>

namespace prost {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  threads_.reserve(num_threads_ - 1);
  for (uint32_t p = 1; p < num_threads_; ++p) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::shared_ptr<Region> region;
  {
    MutexLock lock(mu_);
    region = std::make_shared<Region>(num_tasks, fn, next_tag_++);
    // The mu_ handoff publishes the region's fields to any worker that
    // finds it in the open list.
    open_regions_.push_back(region);
  }
  work_cv_.NotifyAll();
  Participate(*region);
  {
    // Quiesce: wait until every claimed task has returned. The caller
    // usually finishes the latch itself (it claims until the region is
    // dry), so this wait is often satisfied on entry.
    MutexLock lock(region->mu);
    while (!region->done) region->done_cv.Wait(region->mu);
  }
  // Acquire-pair with the completion fetch-adds: after this load the
  // caller may read every task's output slots lock-free.
  region->completed.load(std::memory_order_acquire);
  {
    // Drop the region from the open list if no worker beat us to it
    // (a worker that observed the claims exhausted removes it eagerly).
    MutexLock lock(mu_);
    auto it = std::find(open_regions_.begin(), open_regions_.end(), region);
    if (it != open_regions_.end()) open_regions_.erase(it);
  }
}

void ThreadPool::Participate(Region& region) {
  for (;;) {
    size_t task = region.next.fetch_add(1, std::memory_order_relaxed);
    if (task >= region.num_tasks) return;
    (*region.fn)(task);
    // acq_rel: the release half publishes this task's writes to the
    // caller's acquire load in ParallelFor; the acquire half keeps the
    // increments totally ordered (release sequence), so the finisher's
    // latch flip below happens-after every completion.
    if (region.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.num_tasks) {
      MutexLock lock(region.mu);
      region.done = true;
      region.done_cv.NotifyAll();
    }
  }
}

std::shared_ptr<ThreadPool::Region> ThreadPool::PickRegion() {
  // Drop exhausted regions first (their callers may still be waiting on
  // in-flight tasks — the completion latch, not list membership, gates
  // their return), then pick round-robin among what remains so workers
  // spread across concurrent regions instead of piling onto the oldest.
  std::erase_if(open_regions_, [](const std::shared_ptr<Region>& r) {
    return r->next.load(std::memory_order_relaxed) >= r->num_tasks;
  });
  if (open_regions_.empty()) return nullptr;
  rr_cursor_ %= open_regions_.size();
  return open_regions_[rr_cursor_++];
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    std::shared_ptr<Region> region;
    while (!shutdown_ && (region = PickRegion()) == nullptr) {
      work_cv_.Wait(mu_);
    }
    if (shutdown_) return;
    lock.Unlock();
    Participate(*region);
    region.reset();
    lock.Lock();
  }
}

}  // namespace prost
