#include "common/thread_pool.h"

namespace prost {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  shards_.reserve(num_threads_);
  for (uint32_t p = 0; p < num_threads_; ++p) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(num_threads_ - 1);
  for (uint32_t p = 1; p < num_threads_; ++p) {
    threads_.emplace_back([this, p] { WorkerLoop(p); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The previous region fully quiesced before ParallelFor returned, so
    // no worker touches the shards here. Contiguous blocks: participant 0
    // (the caller) gets the lowest indices.
    size_t block = (num_tasks + num_threads_ - 1) / num_threads_;
    for (uint32_t p = 0; p < num_threads_; ++p) {
      size_t begin = p * block;
      size_t end = begin + block < num_tasks ? begin + block : num_tasks;
      shards_[p]->tasks.clear();
      for (size_t i = begin; i < end; ++i) shards_[p]->tasks.push_back(i);
    }
    fn_ = &fn;
    remaining_.store(num_tasks, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  RunParticipant(0, fn);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 &&
           active_workers_ == 0;
  });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop(uint32_t participant) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    if (fn_ == nullptr) {
      // The caller drained every task and retired this region before we
      // woke (possible whenever num_tasks is small): nothing to run, and
      // dereferencing fn_ would be use-after-clear. Re-wait for the next
      // generation.
      continue;
    }
    const std::function<void(size_t)>& fn = *fn_;
    ++active_workers_;
    lock.unlock();
    RunParticipant(participant, fn);
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunParticipant(uint32_t participant,
                                const std::function<void(size_t)>& fn) {
  size_t task = 0;
  while (NextTask(participant, &task)) {
    fn(task);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task overall: wake the caller (it may be waiting already).
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

bool ThreadPool::NextTask(uint32_t participant, size_t* task) {
  Shard& own = *shards_[participant];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  for (uint32_t offset = 1; offset < num_threads_; ++offset) {
    Shard& victim = *shards_[(participant + offset) % num_threads_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

}  // namespace prost
