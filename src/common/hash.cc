#include "common/hash.h"

namespace prost {

uint64_t HashBytes(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  // Finalize so short keys still avalanche well.
  return Mix64(hash);
}

}  // namespace prost
